package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dharma/internal/kadid"
)

// Codec limits. They bound decode-time allocations so a malformed or
// hostile packet cannot make a node allocate unbounded memory.
const (
	MaxStringLen = 1 << 12 // longest field/address/error string
	MaxBlobLen   = 1 << 16 // longest Data/Author/Sig/Cred blob
	MaxListLen   = 1 << 16 // most contacts or entries per message
)

const codecVersion = 1

// ErrMalformed is wrapped by all decode errors.
var ErrMalformed = errors.New("wire: malformed message")

// Encode serialises m into a fresh byte slice.
func Encode(m *Message) []byte {
	w := &writer{buf: make([]byte, 0, 256)}
	w.byte(codecVersion)
	w.byte(byte(m.Kind))
	w.id(m.From.ID)
	w.str(m.From.Addr)
	w.id(m.Target)
	w.uvarint(uint64(m.TopN))
	w.uvarint(uint64(len(m.Contacts)))
	for _, c := range m.Contacts {
		w.id(c.ID)
		w.str(c.Addr)
	}
	w.uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.str(e.Field)
		w.uvarint(e.Count)
		w.uvarint(e.Init)
		w.blob(e.Data)
		w.blob(e.Author)
		w.blob(e.Sig)
	}
	w.str(m.Err)
	w.blob(m.Cred)
	return w.buf
}

// Decode parses a message previously produced by Encode.
func Decode(b []byte) (*Message, error) {
	r := &reader{buf: b}
	if v := r.byte(); v != codecVersion {
		return nil, fmt.Errorf("%w: version %d", ErrMalformed, v)
	}
	m := &Message{}
	m.Kind = Kind(r.byte())
	m.From.ID = r.id()
	m.From.Addr = r.str()
	m.Target = r.id()
	m.TopN = uint32(r.uvarint())

	nc := r.uvarint()
	if nc > MaxListLen {
		return nil, fmt.Errorf("%w: %d contacts", ErrMalformed, nc)
	}
	if nc > 0 && r.err == nil {
		m.Contacts = make([]Contact, 0, min(nc, 256))
		for i := uint64(0); i < nc && r.err == nil; i++ {
			m.Contacts = append(m.Contacts, Contact{ID: r.id(), Addr: r.str()})
		}
	}

	ne := r.uvarint()
	if ne > MaxListLen {
		return nil, fmt.Errorf("%w: %d entries", ErrMalformed, ne)
	}
	if ne > 0 && r.err == nil {
		m.Entries = make([]Entry, 0, min(ne, 256))
		for i := uint64(0); i < ne && r.err == nil; i++ {
			m.Entries = append(m.Entries, Entry{
				Field:  r.str(),
				Count:  r.uvarint(),
				Init:   r.uvarint(),
				Data:   r.blob(),
				Author: r.blob(),
				Sig:    r.blob(),
			})
		}
	}

	m.Err = r.str()
	m.Cred = r.blob()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf)-r.off)
	}
	return m, nil
}

type writer struct {
	buf []byte
}

func (w *writer) byte(b byte) { w.buf = append(w.buf, b) }

func (w *writer) id(id kadid.ID) { w.buf = append(w.buf, id[:]...) }

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) blob(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrMalformed}, args...)...)
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) id() kadid.ID {
	var id kadid.ID
	if r.err != nil {
		return id
	}
	if r.off+kadid.Size > len(r.buf) {
		r.fail("truncated id")
		return id
	}
	copy(id[:], r.buf[r.off:])
	r.off += kadid.Size
	return id
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > MaxStringLen {
		r.fail("string of %d bytes", n)
		return ""
	}
	if r.off+int(n) > len(r.buf) {
		r.fail("truncated string")
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) blob() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > MaxBlobLen {
		r.fail("blob of %d bytes", n)
		return nil
	}
	if r.off+int(n) > len(r.buf) {
		r.fail("truncated blob")
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return b
}
