package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"dharma/internal/kadid"
)

// Codec limits. They bound decode-time allocations so a malformed or
// hostile packet cannot make a node allocate unbounded memory.
const (
	MaxStringLen = 1 << 12 // longest field/address/error string
	MaxBlobLen   = 1 << 16 // longest Data/Author/Sig/Cred blob
	MaxListLen   = 1 << 16 // most contacts or entries per message
)

// codecVersion 2 added the two BlockSummary uvarints after TopN.
// Version 3 added the TraceID/Hop uvarints after the summary. Version 4
// added the Deadline uvarint after Hop, carrying the caller's remaining
// budget across the wire. The decoder still accepts v2 and v3 frames
// (missing fields read as zero) so a mixed-version fleet keeps
// interoperating during a rolling upgrade.
const (
	codecVersion       = 4
	codecVersionPrev   = 3
	codecVersionOldest = 2
)

// ErrMalformed is wrapped by all decode errors.
var ErrMalformed = errors.New("wire: malformed message")

// Encode serialises m into a fresh byte slice. Hot paths that can
// recycle their payloads should prefer AppendEncode with a pooled
// Buffer; Encode is for callers whose output escapes to an owner with
// an unknown lifetime (e.g. an RPC response handed to the transport).
func Encode(m *Message) []byte {
	return AppendEncode(make([]byte, 0, 256), m)
}

// AppendEncode serialises m, appending to dst (which is used as-is, not
// truncated) and returning the extended slice. With a buffer of
// sufficient capacity the call performs no allocation.
func AppendEncode(dst []byte, m *Message) []byte {
	w := &writer{buf: dst}
	w.byte(codecVersion)
	w.byte(byte(m.Kind))
	w.id(m.From.ID)
	w.str(m.From.Addr)
	w.id(m.Target)
	w.uvarint(uint64(m.TopN))
	w.uvarint(m.Summary.Fields)
	w.uvarint(m.Summary.Digest)
	w.uvarint(m.TraceID)
	w.uvarint(uint64(m.Hop))
	w.uvarint(m.Deadline)
	w.uvarint(uint64(len(m.Contacts)))
	for _, c := range m.Contacts {
		w.id(c.ID)
		w.str(c.Addr)
	}
	w.uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.str(e.Field)
		w.uvarint(e.Count)
		w.uvarint(e.Init)
		w.blob(e.Data)
		w.blob(e.Author)
		w.blob(e.Sig)
	}
	w.str(m.Err)
	w.blob(m.Cred)
	return w.buf
}

// Decode parses a message previously produced by Encode into a fresh
// Message. Every string and blob in the result is an owned copy; the
// caller may retain anything indefinitely.
func Decode(b []byte) (*Message, error) {
	m := &Message{}
	if err := decodeInto(m, b, nil); err != nil {
		return nil, err
	}
	return m, nil
}

// Decoder decodes messages while reusing per-decoder state across
// calls: an intern table that deduplicates the strings of the stream
// (peer addresses and field names repeat heavily), so a steady-state
// decode of blob-free messages allocates nothing. A Decoder is NOT safe
// for concurrent use; pool one per worker.
type Decoder struct {
	strs interner
}

// DecodeInto parses b into m, reusing m's Contacts and Entries backing
// arrays when their capacity suffices.
//
// Ownership: strings come from the decoder's intern table and blobs
// (Entry.Data/Author/Sig, Cred) are fresh copies — both are immutable
// or owned and safe to retain forever. Only the Contacts and Entries
// slice HEADERS are recycled: a caller that retains m.Contacts or
// m.Entries (rather than copying the elements out) must not reuse m for
// another DecodeInto while those slices are live.
func (d *Decoder) DecodeInto(m *Message, b []byte) error {
	return decodeInto(m, b, &d.strs)
}

func decodeInto(m *Message, b []byte, strs *interner) error {
	r := &reader{buf: b, strs: strs}
	v := r.byte()
	if v < codecVersionOldest || v > codecVersion {
		return fmt.Errorf("%w: version %d", ErrMalformed, v)
	}
	m.Kind = Kind(r.byte())
	m.From.ID = r.id()
	m.From.Addr = r.str()
	m.Target = r.id()
	m.TopN = uint32(r.uvarint())
	m.Summary.Fields = r.uvarint()
	m.Summary.Digest = r.uvarint()
	if v >= 3 {
		m.TraceID = r.uvarint()
		m.Hop = uint32(r.uvarint())
	} else {
		m.TraceID = 0
		m.Hop = 0
	}
	if v >= 4 {
		m.Deadline = r.uvarint()
	} else {
		m.Deadline = 0
	}

	nc := r.uvarint()
	if nc > MaxListLen {
		return fmt.Errorf("%w: %d contacts", ErrMalformed, nc)
	}
	m.Contacts = m.Contacts[:0]
	if nc > 0 && r.err == nil {
		if cap(m.Contacts) == 0 {
			m.Contacts = make([]Contact, 0, min(nc, 256))
		}
		for i := uint64(0); i < nc && r.err == nil; i++ {
			m.Contacts = append(m.Contacts, Contact{ID: r.id(), Addr: r.str()})
		}
	}

	ne := r.uvarint()
	if ne > MaxListLen {
		return fmt.Errorf("%w: %d entries", ErrMalformed, ne)
	}
	m.Entries = m.Entries[:0]
	if ne > 0 && r.err == nil {
		if cap(m.Entries) == 0 {
			m.Entries = make([]Entry, 0, min(ne, 256))
		}
		for i := uint64(0); i < ne && r.err == nil; i++ {
			m.Entries = append(m.Entries, Entry{
				Field:  r.str(),
				Count:  r.uvarint(),
				Init:   r.uvarint(),
				Data:   r.blob(),
				Author: r.blob(),
				Sig:    r.blob(),
			})
		}
	}

	m.Err = r.str()
	m.Cred = r.blob()
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != r.off {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf)-r.off)
	}
	return nil
}

// maxPooledBuf bounds the capacity of recycled encode buffers: a
// one-off giant message must not pin its backing array in the pool.
const maxPooledBuf = 1 << 16

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 512)} }}

// Buffer is a pooled destination for AppendEncode, so steady-state
// request marshalling recycles one backing array per in-flight RPC
// instead of allocating per call.
type Buffer struct {
	B []byte
}

// GetBuffer draws a buffer from the pool. Use as:
//
//	buf := wire.GetBuffer()
//	buf.B = wire.AppendEncode(buf.B[:0], msg)
//	... hand buf.B to the transport ...
//	buf.Release()
func GetBuffer() *Buffer {
	return bufPool.Get().(*Buffer)
}

// Release returns the buffer to the pool. Callers must be certain
// nothing still references the bytes: in particular, a transport call
// that ended with ctx.Err() may have left the payload with an abandoned
// handler still draining it (simnet's cancellable path) — such buffers
// must NOT be released; simply drop them to the GC.
func (b *Buffer) Release() {
	if cap(b.B) > maxPooledBuf {
		return
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}

type writer struct {
	buf []byte
}

func (w *writer) byte(b byte) { w.buf = append(w.buf, b) }

func (w *writer) id(id kadid.ID) { w.buf = append(w.buf, id[:]...) }

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) blob(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// maxInterned caps the intern table. A hostile stream of unique strings
// simply resets the table and pays a copy per string — the cap bounds
// memory, it is not a correctness boundary.
const maxInterned = 4096

// interner deduplicates decoded strings so repeated addresses and field
// names resolve to existing string headers without allocating. The
// map lookup keyed by string(b) is recognised by the compiler and does
// not copy b.
type interner struct {
	m map[string]string
}

func (in *interner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	if in.m == nil || len(in.m) >= maxInterned {
		in.m = make(map[string]string, 64)
	}
	s := string(b)
	in.m[s] = s
	return s
}

type reader struct {
	buf  []byte
	off  int
	err  error
	strs *interner // nil: copy strings fresh (Decode path)
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrMalformed}, args...)...)
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) id() kadid.ID {
	var id kadid.ID
	if r.err != nil {
		return id
	}
	if r.off+kadid.Size > len(r.buf) {
		r.fail("truncated id")
		return id
	}
	copy(id[:], r.buf[r.off:])
	r.off += kadid.Size
	return id
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > MaxStringLen {
		r.fail("string of %d bytes", n)
		return ""
	}
	if r.off+int(n) > len(r.buf) {
		r.fail("truncated string")
		return ""
	}
	src := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	if r.strs != nil {
		return r.strs.intern(src)
	}
	return string(src)
}

func (r *reader) blob() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > MaxBlobLen {
		r.fail("blob of %d bytes", n)
		return nil
	}
	if r.off+int(n) > len(r.buf) {
		r.fail("truncated blob")
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return b
}
