package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode checks that no input can panic the decoder and that every
// accepted message re-encodes to a decodable equal message.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(sampleMessage()))
	f.Add(Encode(&Message{Kind: KindPing}))
	f.Add(Encode(&Message{
		Kind:    KindSummary,
		Summary: BlockSummary{Fields: 3, Digest: 0x1122334455667788},
	}))
	f.Add(Encode(&Message{
		Kind:    KindSummaryReply,
		Summary: BlockSummary{Fields: 2, Digest: 42},
		Entries: []Entry{{Field: "rock", Count: 7}, {Field: "jazz", Count: 1}},
	}))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode not idempotent:\n%+v\n%+v", m, m2)
		}
	})
}

// FuzzEncodeDecodeEntry round-trips entries built from fuzzed fields.
func FuzzEncodeDecodeEntry(f *testing.F) {
	f.Add("tag", uint64(1), uint64(0), []byte("data"))
	f.Add("", uint64(0), uint64(1), []byte{})

	f.Fuzz(func(t *testing.T, field string, count, initV uint64, data []byte) {
		if len(field) > MaxStringLen || len(data) > MaxBlobLen {
			return
		}
		m := &Message{
			Kind:    KindStore,
			Entries: []Entry{{Field: field, Count: count, Init: initV, Data: data}},
		}
		if len(data) == 0 {
			m.Entries[0].Data = nil
		}
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", m, got)
		}
	})
}
