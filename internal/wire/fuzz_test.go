package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode checks that no input can panic the decoder and that every
// accepted message re-encodes to a decodable equal message.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(sampleMessage()))
	f.Add(Encode(&Message{Kind: KindPing}))
	f.Add(Encode(&Message{
		Kind:    KindSummary,
		Summary: BlockSummary{Fields: 3, Digest: 0x1122334455667788},
	}))
	f.Add(Encode(&Message{
		Kind:    KindSummaryReply,
		Summary: BlockSummary{Fields: 2, Digest: 42},
		Entries: []Entry{{Field: "rock", Count: 7}, {Field: "jazz", Count: 1}},
	}))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode not idempotent:\n%+v\n%+v", m, m2)
		}
	})
}

// FuzzWireV4Decode stresses the cross-version decode path: seeds cover
// v2, v3 and v4 layouts of the same message, so mutations explore the
// boundary where the version byte decides whether the trace and
// deadline uvarints exist. Any accepted input must re-encode (as v4)
// into an equal message — the rolling-upgrade invariant.
func FuzzWireV4Decode(f *testing.F) {
	deadlined := sampleMessage()
	deadlined.Deadline = 250_000 // 250ms of remaining budget
	f.Add(Encode(deadlined))
	f.Add(Encode(sampleMessage()))
	f.Add(encodeLegacy(codecVersionPrev, sampleMessage()))   // v3: trace, no deadline
	f.Add(encodeLegacy(codecVersionOldest, sampleMessage())) // v2: neither
	f.Add(Encode(&Message{Kind: KindUnauthorized, Err: "unauthorized: revoked"}))
	f.Add(Encode(&Message{Kind: KindStore, Deadline: 1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if data[0] < 4 && m.Deadline != 0 {
			t.Fatalf("v%d frame decoded a deadline: %d", data[0], m.Deadline)
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode not idempotent:\n%+v\n%+v", m, m2)
		}
	})
}

// FuzzEncodeDecodeEntry round-trips entries built from fuzzed fields.
func FuzzEncodeDecodeEntry(f *testing.F) {
	f.Add("tag", uint64(1), uint64(0), []byte("data"))
	f.Add("", uint64(0), uint64(1), []byte{})

	f.Fuzz(func(t *testing.T, field string, count, initV uint64, data []byte) {
		if len(field) > MaxStringLen || len(data) > MaxBlobLen {
			return
		}
		m := &Message{
			Kind:    KindStore,
			Entries: []Entry{{Field: field, Count: count, Init: initV, Data: data}},
		}
		if len(data) == 0 {
			m.Entries[0].Data = nil
		}
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", m, got)
		}
	})
}
