package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/folksonomy"
)

// buildTestGraph constructs a folksonomy with a clear hierarchy:
// "music" co-occurs with everything, genres with their subgenres, and
// subgenres with a handful of resources each.
func buildTestGraph(t *testing.T) *folksonomy.Graph {
	t.Helper()
	g := folksonomy.New()
	genres := map[string][]string{
		"rock":       {"indie", "metal", "punk"},
		"electronic": {"house", "techno", "ambient"},
	}
	id := 0
	for genre, subs := range genres {
		for _, sub := range subs {
			for i := 0; i < 6; i++ {
				r := fmt.Sprintf("r%d", id)
				id++
				if err := g.InsertResource(r, "", "music", genre, sub); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// A few broad resources tagged only with top-level tags.
	for i := 0; i < 4; i++ {
		r := fmt.Sprintf("broad%d", i)
		if err := g.InsertResource(r, "", "music", "rock", "electronic"); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRunTerminates(t *testing.T) {
	g := buildTestGraph(t)
	v := NewFolkView(g)
	for _, strat := range []Strategy{First, Last, Random} {
		res, _ := Run(context.Background(), v, "music", strat, Options{MinResources: 3, Rng: rand.New(rand.NewSource(1))})
		if res.Steps() < 1 {
			t.Fatalf("%v: empty path", strat)
		}
		if res.Reason == StepLimit {
			t.Fatalf("%v: hit step limit on a tiny graph", strat)
		}
	}
}

func TestPathNeverRepeatsTags(t *testing.T) {
	g := buildTestGraph(t)
	v := NewFolkView(g)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		res, _ := Run(context.Background(), v, "music", Random, Options{MinResources: 1, Rng: rng})
		seen := map[string]bool{}
		for _, tag := range res.Path {
			if seen[tag] {
				t.Fatalf("tag %q repeated in path %v", tag, res.Path)
			}
			seen[tag] = true
		}
	}
}

func TestCandidateSetStrictlyShrinks(t *testing.T) {
	// Every selected tag is dropped from the running intersection, so
	// each path step must shrink T_i by at least one.
	g := buildTestGraph(t)
	v := NewFolkView(g)

	prev := len(displayedTags(v, "music", 100, nil))
	member := map[string]bool{}
	for _, w := range displayedTags(v, "music", 100, nil) {
		member[w.Name] = true
	}
	cur := "rock"
	for i := 0; i < 5; i++ {
		d := displayedTags(v, cur, 100, member)
		if len(d) >= prev {
			t.Fatalf("step %d: |T_i| = %d did not shrink from %d", i, len(d), prev)
		}
		if len(d) <= 1 {
			break
		}
		prev = len(d)
		member = map[string]bool{}
		for _, w := range d {
			member[w.Name] = true
		}
		cur = d[0].Name
	}
}

func TestResourcesAreConjunctive(t *testing.T) {
	// Every final resource must carry every tag on the path.
	g := buildTestGraph(t)
	v := NewFolkView(g)
	res, _ := Run(context.Background(), v, "music", First, Options{MinResources: 1})
	for _, r := range res.FinalResources {
		carried := map[string]bool{}
		for _, w := range g.Tags(r) {
			carried[w.Name] = true
		}
		for _, tag := range res.Path {
			if !carried[tag] {
				t.Fatalf("resource %s lacks path tag %s (path %v)", r, tag, res.Path)
			}
		}
	}
}

func TestStrategiesPickCorrectTag(t *testing.T) {
	g := buildTestGraph(t)
	v := NewFolkView(g)
	display := displayedTags(v, "music", 100, nil)
	if len(display) < 3 {
		t.Fatalf("test graph too small: %v", display)
	}
	if got := pick(display, First, nil); got != display[0] {
		t.Fatalf("First picked %+v, want %+v", got, display[0])
	}
	if got := pick(display, Last, nil); got != display[len(display)-1] {
		t.Fatalf("Last picked %+v, want %+v", got, display[len(display)-1])
	}
	rng := rand.New(rand.NewSource(3))
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[pick(display, Random, rng).Name] = true
	}
	if len(seen) < 2 {
		t.Fatal("Random strategy never varied")
	}
}

func TestDisplayCapApplied(t *testing.T) {
	g := folksonomy.New()
	tags := []string{"hub"}
	for i := 0; i < 30; i++ {
		tags = append(tags, fmt.Sprintf("t%02d", i))
	}
	if err := g.InsertResource("r", "", tags...); err != nil {
		t.Fatal(err)
	}
	v := NewFolkView(g)
	if got := len(displayedTags(v, "hub", 5, nil)); got != 5 {
		t.Fatalf("cap 5 returned %d tags", got)
	}
	res, _ := Run(context.Background(), v, "hub", First, Options{DisplayCap: 5, MinResources: 1})
	if res.Steps() < 1 {
		t.Fatal("run failed under display cap")
	}
}

func TestTerminationReasons(t *testing.T) {
	// Tags converge: a pair of tags that co-occur once.
	g := folksonomy.New()
	if err := g.InsertResource("r1", "", "a", "b"); err != nil {
		t.Fatal(err)
	}
	// Many resources so |R| stays above the threshold.
	for i := 0; i < 20; i++ {
		if err := g.InsertResource(fmt.Sprintf("x%d", i), "", "a", "b"); err != nil {
			t.Fatal(err)
		}
	}
	v := NewFolkView(g)
	res, _ := Run(context.Background(), v, "a", First, Options{MinResources: 1})
	if res.Reason != TagsConverged {
		t.Fatalf("reason = %v, want TagsConverged (path %v)", res.Reason, res.Path)
	}

	// Resources converge: threshold higher than the resource count.
	res, _ = Run(context.Background(), v, "a", First, Options{MinResources: 100})
	if res.Reason != ResourcesConverged || res.Steps() != 1 {
		t.Fatalf("reason = %v steps = %d, want immediate ResourcesConverged", res.Reason, res.Steps())
	}
}

func TestStepLimit(t *testing.T) {
	// A dense graph where every pair co-occurs often: the walk cannot
	// converge within 2 steps, so the limit must fire.
	g := folksonomy.New()
	tags := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < 40; i++ {
		if err := g.InsertResource(fmt.Sprintf("r%d", i), "", tags...); err != nil {
			t.Fatal(err)
		}
	}
	v := NewFolkView(g)
	res, _ := Run(context.Background(), v, "a", First, Options{MinResources: 1, MaxSteps: 2})
	if res.Reason != StepLimit || res.Steps() != 2 {
		t.Fatalf("reason = %v steps = %d, want StepLimit at 2", res.Reason, res.Steps())
	}
}

func TestCompositeViewUsesApproximatedFG(t *testing.T) {
	g := buildTestGraph(t)
	// An "approximated" FG that only keeps the music<->rock arcs.
	fg := MapFG{
		"music": {"rock": 3},
		"rock":  {"music": 5},
	}
	v := NewCompositeView(fg, g)
	ws := v.RelatedTags("music")
	if len(ws) != 1 || ws[0].Name != "rock" {
		t.Fatalf("RelatedTags = %v", ws)
	}
	// Resources still come from the full TRG.
	if len(v.Resources("techno")) == 0 {
		t.Fatal("CompositeView lost TRG resources")
	}
	res, _ := Run(context.Background(), v, "music", First, Options{MinResources: 1})
	if res.Steps() < 1 {
		t.Fatal("navigation over composite view failed")
	}
}

func TestEngineViewNavigatesLiveEngine(t *testing.T) {
	store := dht.NewLocal()
	e, err := core.NewEngine(store, core.Config{Mode: core.Approximated, K: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := e.InsertResource(context.Background(), fmt.Sprintf("r%d", i), "", "music", "rock", "indie"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := e.InsertResource(context.Background(), fmt.Sprintf("q%d", i), "", "music", "jazz"); err != nil {
			t.Fatal(err)
		}
	}
	v := NewEngineView(context.Background(), e)
	res, _ := Run(context.Background(), v, "music", First, Options{MinResources: 2})
	if res.Steps() < 2 {
		t.Fatalf("navigation too short: %v", res.Path)
	}
	// Each step costs 2 lookups through SearchStep (memoised per tag),
	// so lookups grow linearly with path length — sanity check only.
	if store.Gets() == 0 {
		t.Fatal("engine view performed no DHT reads")
	}

	// Unknown tag: navigation degrades to an immediate stop.
	empty, _ := Run(context.Background(), v, "ghost", First, Options{MinResources: 1})
	if empty.Steps() != 1 || empty.Reason != ResourcesConverged {
		t.Fatalf("ghost tag: %+v", empty)
	}
}

func TestRunFromResource(t *testing.T) {
	g := buildTestGraph(t)
	v := NewFolkView(g)

	res, _ := RunFromResource(context.Background(), v, v, "r0", First, Options{MinResources: 1})
	if res.Steps() < 1 {
		t.Fatalf("no path from resource: %+v", res)
	}
	// The entry tag must be one of the resource's own tags.
	carried := map[string]bool{}
	for _, w := range g.Tags("r0") {
		carried[w.Name] = true
	}
	if !carried[res.Path[0]] {
		t.Fatalf("entry tag %q not on resource r0", res.Path[0])
	}
	// Unknown resource: empty walk, no panic.
	empty, _ := RunFromResource(context.Background(), v, v, "ghost", First, Options{})
	if empty.Steps() != 0 || empty.Reason != TagsConverged {
		t.Fatalf("ghost resource: %+v", empty)
	}
}

func TestRunFromResourceOverEngine(t *testing.T) {
	store := dht.NewLocal()
	e, err := core.NewEngine(store, core.Config{Mode: core.Approximated, K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := e.InsertResource(context.Background(), fmt.Sprintf("r%d", i), "", "music", "rock"); err != nil {
			t.Fatal(err)
		}
	}
	v := NewEngineView(context.Background(), e)
	res, _ := RunFromResource(context.Background(), v, v, "r3", Last, Options{MinResources: 1})
	if res.Steps() < 1 {
		t.Fatalf("engine-backed resource pivot failed: %+v", res)
	}
}

func TestStrategyAndReasonStrings(t *testing.T) {
	if First.String() != "first" || Last.String() != "last" || Random.String() != "random" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" || Reason(9).String() == "" {
		t.Fatal("unknown values must still print")
	}
	for _, r := range []Reason{TagsConverged, ResourcesConverged, StepLimit} {
		if r.String() == "" {
			t.Fatal("empty reason name")
		}
	}
}

// TestRunCanceledContext: a walk whose context ends stops with the
// Canceled reason and the context error; a pre-canceled context never
// starts the walk.
func TestRunCanceledContext(t *testing.T) {
	v := NewFolkView(buildTestGraph(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, v, "music", First, Options{MinResources: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under canceled ctx: err = %v, want context.Canceled", err)
	}
	if res.Reason != Canceled {
		t.Fatalf("reason = %v, want canceled", res.Reason)
	}
	if res.Steps() != 0 {
		t.Fatalf("pre-canceled walk took %d steps", res.Steps())
	}
	if _, err := RunFromResource(ctx, v, v, "r0", First, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunFromResource under canceled ctx: err = %v", err)
	}
}
