package search

import (
	"context"
	"sync"

	"dharma/internal/core"
	"dharma/internal/folksonomy"
)

// FolkView navigates the in-memory theoretic model. Sorted adjacency
// lists are cached: the convergence experiments run hundreds of walks
// over the same graph.
type FolkView struct {
	G *folksonomy.Graph

	mu    sync.Mutex
	cache map[string][]folksonomy.Weighted
}

// NewFolkView wraps g.
func NewFolkView(g *folksonomy.Graph) *FolkView {
	return &FolkView{G: g, cache: make(map[string][]folksonomy.Weighted)}
}

// RelatedTags implements View.
func (v *FolkView) RelatedTags(t string) []folksonomy.Weighted {
	v.mu.Lock()
	ws, ok := v.cache[t]
	v.mu.Unlock()
	if ok {
		return ws
	}
	ws = v.G.Neighbors(t)
	folksonomy.SortWeighted(ws)
	v.mu.Lock()
	v.cache[t] = ws
	v.mu.Unlock()
	return ws
}

// Resources implements View.
func (v *FolkView) Resources(t string) []folksonomy.Weighted {
	return v.G.Res(t)
}

// FGSource supplies the (possibly approximated) Folksonomy Graph
// adjacency of a tag, unsorted. Both the evolution simulator's result
// and plain adjacency maps implement it.
type FGSource interface {
	Neighbors(t string) []folksonomy.Weighted
}

// MapFG adapts a plain adjacency map to FGSource.
type MapFG map[string]map[string]int

// Neighbors implements FGSource.
func (m MapFG) Neighbors(t string) []folksonomy.Weighted {
	adj := m[t]
	out := make([]folksonomy.Weighted, 0, len(adj))
	for name, w := range adj {
		out = append(out, folksonomy.Weighted{Name: name, Weight: w})
	}
	return out
}

// CompositeView navigates an approximated FG (typically the result of
// the evolution simulation) while reading resources from the original
// TRG — the paper notes that "only the FG is affected by the
// approximation, while the TRG graph remains the same".
type CompositeView struct {
	FG  FGSource
	TRG *folksonomy.Graph

	mu    sync.Mutex
	cache map[string][]folksonomy.Weighted
}

// NewCompositeView pairs an approximated FG with the original TRG.
func NewCompositeView(fg FGSource, trg *folksonomy.Graph) *CompositeView {
	return &CompositeView{FG: fg, TRG: trg, cache: make(map[string][]folksonomy.Weighted)}
}

// RelatedTags implements View.
func (v *CompositeView) RelatedTags(t string) []folksonomy.Weighted {
	v.mu.Lock()
	ws, ok := v.cache[t]
	v.mu.Unlock()
	if ok {
		return ws
	}
	ws = v.FG.Neighbors(t)
	folksonomy.SortWeighted(ws)
	v.mu.Lock()
	v.cache[t] = ws
	v.mu.Unlock()
	return ws
}

// Resources implements View.
func (v *CompositeView) Resources(t string) []folksonomy.Weighted {
	return v.TRG.Res(t)
}

// EngineView navigates a live DHARMA engine: every step's data comes
// from the DHT via SearchStep (2 overlay lookups). The last step is
// memoised because Run always asks for the tags and then the resources
// of the same tag.
//
// An EngineView is request-scoped: it is built per walk, and the
// context it is built with bounds every lookup the walk performs (the
// View interface itself is context-free because the in-memory views
// never block). TopN, when positive, overrides the engine's block-read
// cap for this walk's steps.
type EngineView struct {
	E *core.Engine
	// TopN, when non-zero, is the per-walk index-side filter cap passed
	// to every SearchStep (negative disables filtering). Zero keeps the
	// engine default.
	TopN int

	ctx     context.Context
	mu      sync.Mutex
	lastTag string
	related []folksonomy.Weighted
	res     []folksonomy.Weighted
	ok      bool
	err     error
}

// NewEngineView wraps e for one walk bounded by ctx.
func NewEngineView(ctx context.Context, e *core.Engine) *EngineView {
	return &EngineView{E: e, ctx: ctx}
}

func (v *EngineView) load(t string) {
	if v.ok && v.lastTag == t {
		return
	}
	related, res, err := v.E.SearchStepN(v.ctx, t, v.TopN)
	if err != nil {
		// The View interface cannot propagate errors mid-walk, so the
		// step degrades to "nothing displayed" (the walk converges) and
		// the first failure is retained for Err. ErrNoSuchTag is
		// retained too: on an overlay, a dropped lookup of an existing
		// tag is indistinguishable from an unknown tag, and callers
		// that navigate a known vocabulary (the load harness) must see
		// it — callers starting from arbitrary user input can filter
		// with errors.Is(err, core.ErrNoSuchTag).
		if v.err == nil {
			v.err = err
		}
		related, res = nil, nil
	}
	folksonomy.SortWeighted(related)
	v.lastTag, v.related, v.res, v.ok = t, related, res, true
}

// Err returns the first lookup error a walk through this view
// swallowed, nil on a clean walk. Load harnesses check it after
// search.Run, which itself never errors.
func (v *EngineView) Err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.err
}

// RelatedTags implements View.
func (v *EngineView) RelatedTags(t string) []folksonomy.Weighted {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.load(t)
	return v.related
}

// Resources implements View.
func (v *EngineView) Resources(t string) []folksonomy.Weighted {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.load(t)
	return v.res
}

// ResourceTagger is the optional view capability behind resource-pivot
// navigation: listing Tags(r).
type ResourceTagger interface {
	TagsOf(r string) []folksonomy.Weighted
}

// TagsOf implements ResourceTagger.
func (v *FolkView) TagsOf(r string) []folksonomy.Weighted { return v.G.Tags(r) }

// TagsOf implements ResourceTagger.
func (v *CompositeView) TagsOf(r string) []folksonomy.Weighted { return v.TRG.Tags(r) }

// TagsOf implements ResourceTagger (one overlay lookup of r̄). A failed
// lookup degrades to "no tags" and is retained for Err.
func (v *EngineView) TagsOf(r string) []folksonomy.Weighted {
	ws, err := v.E.TagsOf(v.ctx, r)
	if err != nil {
		v.mu.Lock()
		if v.err == nil {
			v.err = err
		}
		v.mu.Unlock()
		return nil
	}
	return ws
}

var (
	_ View           = (*FolkView)(nil)
	_ View           = (*CompositeView)(nil)
	_ View           = (*EngineView)(nil)
	_ ResourceTagger = (*FolkView)(nil)
	_ ResourceTagger = (*CompositeView)(nil)
	_ ResourceTagger = (*EngineView)(nil)
)
