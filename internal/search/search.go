// Package search implements the faceted navigation of §III-C: starting
// from a tag t0, the user walks a path t0, t1, ..., tn in the
// Folksonomy Graph, at each step intersecting the candidate tag set
//
//	T_i = T_{i-1} ∩ N_FG(t_i)      (T_0 = N_FG(t_0))
//
// and the resource set
//
//	R_i = R_{i-1} ∩ Res(t_i)       (R_0 = Res(t_0)).
//
// Because t_i never neighbours itself, T_i shrinks strictly at every
// step, which proves convergence; the walk stops when |T_i| reduces to 1
// or |R_i| falls to the display threshold (10 in the paper).
//
// Mirroring the deployment, the tag list a user sees at each step is the
// top-N slice (by similarity from the current tag) of what the DHT
// returns — the paper's index-side filtering with N = 100. Selection
// strategies operate on that displayed slice.
package search

import (
	"context"
	"fmt"
	"math/rand"

	"dharma/internal/folksonomy"
)

// View supplies the navigation data: the FG adjacency of a tag (sorted
// by descending similarity) and the resources it labels. Implementations
// back onto the in-memory model, an approximated graph, or a live DHT
// engine.
type View interface {
	// RelatedTags returns N_FG(t) with sim(t,·) weights, sorted by
	// descending weight (ties by name).
	RelatedTags(t string) []folksonomy.Weighted
	// Resources returns Res(t) with u(t,·) weights, unsorted.
	Resources(t string) []folksonomy.Weighted
}

// Strategy selects the next tag from the displayed list.
type Strategy int

// The three selection strategies evaluated in §V-C.
const (
	// First picks the tag most similar to the current one.
	First Strategy = iota
	// Last picks the least similar displayed tag.
	Last
	// Random picks uniformly among displayed tags.
	Random
)

// String names the strategy as in Table IV.
func (s Strategy) String() string {
	switch s {
	case First:
		return "first"
	case Last:
		return "last"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("strategy-%d", int(s))
	}
}

// Reason explains why a navigation stopped.
type Reason int

// Termination reasons.
const (
	// TagsConverged: |T_i| shrank to ≤ 1 — no further refinement exists.
	TagsConverged Reason = iota
	// ResourcesConverged: |R_i| fell to the resource threshold; the
	// remaining resources fit a result screen.
	ResourcesConverged
	// StepLimit: the safety bound on path length was hit.
	StepLimit
	// Canceled: the walk's context ended between steps; the Result holds
	// the partial path and Run returned the context's error alongside.
	Canceled
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case TagsConverged:
		return "tags-converged"
	case ResourcesConverged:
		return "resources-converged"
	case StepLimit:
		return "step-limit"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("reason-%d", int(r))
	}
}

// Options tunes a navigation run.
type Options struct {
	// DisplayCap is the maximum number of tags shown per step (paper:
	// 100). 0 selects 100; negative disables the cap.
	DisplayCap int
	// MinResources stops the walk once |R_i| is at or below it (paper:
	// 10). 0 selects 10.
	MinResources int
	// MaxSteps is a safety bound on the path length (0 selects 10000).
	MaxSteps int
	// Rng drives the Random strategy; nil seeds a deterministic source.
	Rng *rand.Rand
}

func (o Options) withDefaults() Options {
	switch {
	case o.DisplayCap == 0:
		o.DisplayCap = 100
	case o.DisplayCap < 0:
		o.DisplayCap = int(^uint(0) >> 1)
	}
	if o.MinResources == 0 {
		o.MinResources = 10
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 10000
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// Result records one completed navigation.
type Result struct {
	// Path is the sequence of selected tags, t0 first. Its length is
	// the paper's "search steps" measure.
	Path []string
	// FinalTags is T_n: the displayed candidate tags when the walk
	// stopped.
	FinalTags []string
	// FinalResources is R_n: the resources satisfying the conjunction
	// of every selected tag.
	FinalResources []string
	// Reason explains the termination.
	Reason Reason
}

// Steps returns len(Path): the number of tags the user selected.
func (r Result) Steps() int { return len(r.Path) }

// Run navigates v from the start tag under the given strategy. ctx is
// checked before every navigation step (each step costs two overlay
// lookups against a live deployment): a context that ends mid-walk
// stops the navigation immediately and Run returns the partial Result
// — path walked so far, Reason Canceled — together with ctx.Err().
// Errors a context-aware View swallowed inside a step are NOT returned
// here; EngineView retains them for its Err method.
func Run(ctx context.Context, v View, start string, strat Strategy, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if err := ctx.Err(); err != nil {
		return Result{Reason: Canceled}, err
	}

	display := displayedTags(v, start, opt.DisplayCap, nil)
	resources := make(map[string]bool)
	for _, w := range v.Resources(start) {
		resources[w.Name] = true
	}

	res := Result{Path: []string{start}}
	var walkErr error
	for {
		if err := ctx.Err(); err != nil {
			res.Reason = Canceled
			walkErr = err
			break
		}
		if len(resources) <= opt.MinResources {
			res.Reason = ResourcesConverged
			break
		}
		if len(display) <= 1 {
			res.Reason = TagsConverged
			break
		}
		if len(res.Path) >= opt.MaxSteps {
			res.Reason = StepLimit
			break
		}

		next := pick(display, strat, opt.Rng).Name
		res.Path = append(res.Path, next)

		// T_i = T_{i-1} ∩ (displayed slice of N_FG(next)).
		member := make(map[string]bool, len(display))
		for _, w := range display {
			member[w.Name] = true
		}
		display = displayedTags(v, next, opt.DisplayCap, member)

		// R_i = R_{i-1} ∩ Res(next).
		nextRes := make(map[string]bool)
		for _, w := range v.Resources(next) {
			if resources[w.Name] {
				nextRes[w.Name] = true
			}
		}
		resources = nextRes
	}

	res.FinalTags = names(display)
	res.FinalResources = make([]string, 0, len(resources))
	for r := range resources {
		res.FinalResources = append(res.FinalResources, r)
	}
	return res, walkErr
}

// RunFromResource navigates "more like this": the walk starts at an
// existing resource instead of a tag. The resource's own tag list plays
// the role of the first display — the strategy picks the entry tag from
// it (weights are the u(t,r) annotation counts) — and the walk then
// proceeds exactly like Run, under the same ctx. The view must also
// implement ResourceTagger; an unknown resource yields a zero-length
// path.
func RunFromResource(ctx context.Context, v View, rt ResourceTagger, r string, strat Strategy, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if err := ctx.Err(); err != nil {
		return Result{Reason: Canceled}, err
	}
	tags := rt.TagsOf(r)
	if len(tags) == 0 {
		return Result{Reason: TagsConverged}, nil
	}
	folksonomy.SortWeighted(tags)
	if len(tags) > opt.DisplayCap {
		tags = tags[:opt.DisplayCap]
	}
	start := pick(tags, strat, opt.Rng).Name
	return Run(ctx, v, start, strat, opt)
}

// displayedTags fetches the neighbour list of t, truncates it to the
// display cap (index-side filtering), and — when filter is non-nil —
// keeps only tags already in the running intersection.
func displayedTags(v View, t string, cap int, filter map[string]bool) []folksonomy.Weighted {
	ws := v.RelatedTags(t)
	if len(ws) > cap {
		ws = ws[:cap]
	}
	if filter == nil {
		return ws
	}
	out := ws[:0:0]
	for _, w := range ws {
		if filter[w.Name] && w.Name != t {
			out = append(out, w)
		}
	}
	return out
}

func pick(display []folksonomy.Weighted, strat Strategy, rng *rand.Rand) folksonomy.Weighted {
	switch strat {
	case First:
		return display[0]
	case Last:
		return display[len(display)-1]
	default:
		return display[rng.Intn(len(display))]
	}
}

func names(ws []folksonomy.Weighted) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
