package loadgen

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/core"
	"dharma/internal/metrics"
	"dharma/internal/wire"
)

// OverloadConfig parameterises the overload scenario: a calibration
// pass measures the deployment's closed-loop capacity, then open-loop
// phases offer multiples of it and measure what survives. A healthy
// deployment's goodput curve is flat — offered load beyond capacity is
// rejected early (busy) instead of collapsing the part that fits.
type OverloadConfig struct {
	// Multipliers are the offered-load factors relative to measured
	// capacity (default 1, 2, 4).
	Multipliers []float64
	// Duration is how long each phase offers load (default 2s);
	// CalibrateDuration bounds the capacity measurement (default 1s).
	Duration, CalibrateDuration time.Duration
	// Workers is the closed-loop concurrency of the calibration pass
	// (default 8).
	Workers int
	// OpTimeout is the per-operation deadline during the open-loop
	// phases (default 250ms); without one, a saturated deployment would
	// accumulate waiters instead of failing them fast.
	OpTimeout time.Duration
	// MaxInFlight caps the client-side concurrent operations per phase
	// (default 4096); offered ops beyond it are shed client-side and
	// counted, so the generator itself cannot become the unbounded
	// queue it is trying to detect.
	MaxInFlight int
	// Resources and Tags size the seeded vocabulary (defaults as in
	// Config); TagZipfS/TagZipfV shape tag popularity.
	Resources, Tags    int
	TagZipfS, TagZipfV float64
	// Seed drives the generator's randomness.
	Seed int64
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if len(c.Multipliers) == 0 {
		c.Multipliers = []float64{1, 2, 4}
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.CalibrateDuration <= 0 {
		c.CalibrateDuration = time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 250 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	if c.Resources <= 0 {
		c.Resources = 64
	}
	if c.Tags <= 0 {
		c.Tags = 32
	}
	if c.TagZipfS < 1.01 {
		c.TagZipfS = 1.2
	}
	if c.TagZipfV < 1 {
		c.TagZipfV = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// OverloadPhase is one offered-load step's outcome.
type OverloadPhase struct {
	Multiplier float64       // offered load relative to capacity
	Offered    float64       // target rate, ops/s
	Issued     int64         // ops actually dispatched
	Succeeded  int64         // ops that completed in time
	Busy       int64         // ops rejected with a BUSY answer
	Deadline   int64         // ops that hit OpTimeout
	Failed     int64         // other failures
	Shed       int64         // ops dropped client-side at MaxInFlight
	Goodput    float64       // successes per second
	P50, P99   time.Duration // success latency percentiles
	ServerBusy int64         // server-side admission rejections (delta)
	MaxGor     int           // peak goroutine count sampled in-phase
}

// OverloadReport is the scenario's full result.
type OverloadReport struct {
	Capacity           float64 // calibrated closed-loop ops/s
	BaselineGoroutines int     // before any phase ran
	FinalGoroutines    int     // after the last phase quiesced
	Phases             []OverloadPhase
}

// String renders the goodput-vs-offered-load table.
func (r *OverloadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capacity (closed-loop): %.0f ops/s\n", r.Capacity)
	fmt.Fprintf(&b, "%-6s %10s %8s %8s %6s %8s %6s %6s %10s %10s %8s %6s\n",
		"mult", "offered/s", "issued", "ok", "busy", "deadline", "fail", "shed", "goodput/s", "p50", "p99", "gor")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-6.1f %10.0f %8d %8d %6d %8d %6d %6d %10.0f %10s %8s %6d\n",
			p.Multiplier, p.Offered, p.Issued, p.Succeeded, p.Busy, p.Deadline, p.Failed, p.Shed,
			p.Goodput, p.P50.Round(time.Microsecond), p.P99.Round(time.Microsecond), p.MaxGor)
	}
	fmt.Fprintf(&b, "goroutines: baseline %d, final %d\n", r.BaselineGoroutines, r.FinalGoroutines)
	return b.String()
}

// WriteCSV writes one row per phase.
func (r *OverloadReport) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{
		"multiplier", "offered_per_s", "issued", "succeeded", "busy", "deadline",
		"failed", "shed", "goodput_per_s", "p50_us", "p99_us", "server_busy", "max_goroutines",
	}); err != nil {
		f.Close()
		return err
	}
	for _, p := range r.Phases {
		rec := []string{
			fmt.Sprintf("%.2f", p.Multiplier),
			fmt.Sprintf("%.1f", p.Offered),
			fmt.Sprintf("%d", p.Issued),
			fmt.Sprintf("%d", p.Succeeded),
			fmt.Sprintf("%d", p.Busy),
			fmt.Sprintf("%d", p.Deadline),
			fmt.Sprintf("%d", p.Failed),
			fmt.Sprintf("%d", p.Shed),
			fmt.Sprintf("%.1f", p.Goodput),
			fmt.Sprintf("%d", p.P50.Microseconds()),
			fmt.Sprintf("%d", p.P99.Microseconds()),
			fmt.Sprintf("%d", p.ServerBusy),
			fmt.Sprintf("%d", p.MaxGor),
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Check verifies the two overload-protection invariants: goodput at
// every offered multiple stays within tolerance of the first phase's
// goodput (no collapse past saturation), and the deployment sheds load
// without growing goroutines past baseline + budget. It returns every
// violation found, empty when the curve is flat.
func (r *OverloadReport) Check(tolerance float64, goroutineBudget int) []string {
	var problems []string
	if len(r.Phases) == 0 {
		return []string{"no phases ran"}
	}
	base := r.Phases[0].Goodput
	if base <= 0 {
		return []string{"baseline phase produced zero goodput"}
	}
	floor := base * (1 - tolerance)
	for _, p := range r.Phases[1:] {
		if p.Goodput < floor {
			problems = append(problems, fmt.Sprintf(
				"goodput collapsed at %.1fx offered load: %.0f ops/s vs %.0f at baseline (floor %.0f, tolerance %.0f%%)",
				p.Multiplier, p.Goodput, base, floor, tolerance*100))
		}
	}
	if budget := r.BaselineGoroutines + goroutineBudget; r.FinalGoroutines > budget {
		problems = append(problems, fmt.Sprintf(
			"goroutines grew past budget: %d final vs %d baseline (+%d allowed)",
			r.FinalGoroutines, r.BaselineGoroutines, goroutineBudget))
	}
	return problems
}

// RunOverload seeds a small vocabulary, calibrates closed-loop
// capacity, then offers cfg.Multipliers × capacity in open-loop phases
// — issuing each operation on its own deadline regardless of whether
// earlier ones finished, the way real independent clients behave.
// serverBusy, when non-nil, samples the deployment's total server-side
// admission rejections (e.g. simnet Counters().Busy); phases record the
// delta.
func RunOverload(ctx context.Context, cfg OverloadConfig, engines []*core.Engine, serverBusy func() int64) (*OverloadReport, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("loadgen: no engines to drive")
	}
	cfg = cfg.withDefaults()
	vocab := buildVocabulary(Config{Resources: cfg.Resources, Tags: cfg.Tags})

	// Seed: every tag gets a block so reads have something to find.
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	for i, r := range vocab.resources {
		tags := []string{vocab.tags[i%len(vocab.tags)]}
		if err := engines[i%len(engines)].InsertResource(ctx, r, "uri:"+r, tags...); err != nil {
			return nil, fmt.Errorf("loadgen: overload seed %q: %w", r, err)
		}
	}
	for i := len(vocab.resources); i < len(vocab.tags); i++ {
		r := vocab.resources[i%len(vocab.resources)]
		if err := engines[i%len(engines)].Tag(ctx, r, vocab.tags[i]); err != nil {
			return nil, fmt.Errorf("loadgen: overload seed tag %q: %w", vocab.tags[i], err)
		}
	}

	rep := &OverloadReport{BaselineGoroutines: runtime.NumGoroutine()}

	capacity, err := calibrate(ctx, cfg, engines, vocab)
	if err != nil {
		return nil, err
	}
	rep.Capacity = capacity

	for _, mult := range cfg.Multipliers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		phase := runPhase(ctx, cfg, engines, vocab, mult, capacity, serverBusy, seedRng.Int63())
		rep.Phases = append(rep.Phases, phase)
	}
	// Quiesce before the final count: servers may still be draining work
	// whose callers already timed out — bounded work, not a leak. Take
	// the lowest count seen inside the window so a transient tail does
	// not fail the goroutine gate.
	rep.FinalGoroutines = runtime.NumGoroutine()
	quiesce := time.Now().Add(3 * time.Second)
	for time.Now().Before(quiesce) && ctx.Err() == nil {
		if g := runtime.NumGoroutine(); g < rep.FinalGoroutines {
			rep.FinalGoroutines = g
		}
		if rep.FinalGoroutines <= rep.BaselineGoroutines {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return rep, nil
}

// calibrate measures closed-loop capacity: cfg.Workers goroutines issue
// operations back-to-back for CalibrateDuration; capacity is the
// completion rate. Closed-loop never overloads — each worker waits for
// its previous op — so this is the sustainable service rate the
// open-loop phases are measured against.
func calibrate(ctx context.Context, cfg OverloadConfig, engines []*core.Engine, vocab vocabulary) (float64, error) {
	cctx, cancel := context.WithTimeout(ctx, cfg.CalibrateDuration)
	defer cancel()
	var done atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			zipf := rand.NewZipf(rng, cfg.TagZipfS, cfg.TagZipfV, uint64(len(vocab.tags)-1))
			for i := 0; cctx.Err() == nil; i++ {
				if overloadOp(cctx, engines[(w+i)%len(engines)], vocab, zipf, rng, i) == nil {
					done.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := done.Load()
	if n == 0 {
		return 0, fmt.Errorf("loadgen: calibration completed zero operations")
	}
	return float64(n) / elapsed.Seconds(), nil
}

// overloadOp issues one operation: even indexes write (Tag on a
// Zipf-hot tag's resource), odd indexes read (SearchStep on a hot tag)
// — a half-write mix, the worst case for admission because writes fan
// out to the whole replica set.
func overloadOp(ctx context.Context, e *core.Engine, vocab vocabulary, zipf *rand.Zipf, rng *rand.Rand, i int) error {
	tag := vocab.tags[int(zipf.Uint64())%len(vocab.tags)]
	if i%2 == 0 {
		r := vocab.resources[rng.Intn(len(vocab.resources))]
		return e.Tag(ctx, r, tag)
	}
	_, _, err := e.SearchStep(ctx, tag)
	return err
}

// runPhase offers mult × capacity for cfg.Duration. The pacer loop
// wakes every 2ms, computes how many ops the offered rate owes, and
// dispatches each on its own goroutine under OpTimeout — up to the
// MaxInFlight client-side cap, past which offered ops are shed and
// counted rather than queued (an open-loop generator that queues is
// just measuring its own backlog).
func runPhase(ctx context.Context, cfg OverloadConfig, engines []*core.Engine, vocab vocabulary, mult, capacity float64, serverBusy func() int64, seed int64) OverloadPhase {
	offered := mult * capacity
	ph := OverloadPhase{Multiplier: mult, Offered: offered}

	var busyBefore int64
	if serverBusy != nil {
		busyBefore = serverBusy()
	}

	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, cfg.TagZipfS, cfg.TagZipfV, uint64(len(vocab.tags)-1))
	// Pre-draw the per-op randomness in the single-threaded pacer so the
	// dispatched goroutines share nothing.
	type opPlan struct {
		tag, resource string
	}
	plan := func() opPlan {
		return opPlan{
			tag:      vocab.tags[int(zipf.Uint64())%len(vocab.tags)],
			resource: vocab.resources[rng.Intn(len(vocab.resources))],
		}
	}

	lat := &metrics.LatencyRecorder{}
	var succeeded, busy, deadline, failed atomic.Int64
	inflight := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	maxGor := runtime.NumGoroutine()

	start := time.Now()
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	var issued, shed int64
	for time.Since(start) < cfg.Duration && ctx.Err() == nil {
		<-ticker.C
		if g := runtime.NumGoroutine(); g > maxGor {
			maxGor = g
		}
		// Deficit pacing: how many ops the offered rate owes by now,
		// minus what was already issued or shed. Sheds count as offered
		// — the generator does not re-offer them later, or a shed storm
		// would just defer the overload instead of measuring it.
		owe := int64(offered*time.Since(start).Seconds()) - issued - shed
		for ; owe > 0; owe-- {
			select {
			case inflight <- struct{}{}:
			default:
				shed++
				continue
			}
			issued++
			p := plan()
			write := issued%2 == 0
			e := engines[int(issued)%len(engines)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-inflight }()
				opCtx, cancel := context.WithTimeout(ctx, cfg.OpTimeout)
				defer cancel()
				opStart := time.Now()
				var err error
				if write {
					err = e.Tag(opCtx, p.resource, p.tag)
				} else {
					_, _, err = e.SearchStep(opCtx, p.tag)
				}
				switch {
				case err == nil:
					succeeded.Add(1)
					lat.Observe(time.Since(opStart))
				case errors.Is(err, wire.ErrBusy):
					busy.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					deadline.Add(1)
				default:
					failed.Add(1)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	ph.Issued = issued
	ph.Shed = shed
	ph.Succeeded = succeeded.Load()
	ph.Busy = busy.Load()
	ph.Deadline = deadline.Load()
	ph.Failed = failed.Load()
	ph.Goodput = float64(ph.Succeeded) / elapsed.Seconds()
	s := lat.Summary()
	ph.P50, ph.P99 = s.P50, s.P99
	ph.MaxGor = maxGor
	if serverBusy != nil {
		ph.ServerBusy = serverBusy() - busyBefore
	}
	return ph
}
