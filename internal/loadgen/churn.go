package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/kademlia"
)

// Churner drives membership churn against a live cluster while a
// workload runs: it crashes nodes, removes them gracefully, revives
// crashed ones, and joins fresh ones, at a configured event rate. The
// first Protected member indices — the nodes whose engines the load
// workers drive — are never touched, matching a deployment where
// long-lived clients watch a churning storage population.
//
// The churner is the only goroutine that shrinks membership (workers
// and maintainers only read it, AddNode only grows it), so its
// index-based victim selection is race-free by construction.
type Churner struct {
	cl  *kademlia.Cluster
	cfg ChurnConfig

	baseline int // membership at construction; joins aim back at it
	maxDead  int

	mu      sync.Mutex
	crashed []*kademlia.Node

	crashes atomic.Int64
	leaves  atomic.Int64
	revives atomic.Int64
	joins   atomic.Int64
}

// ChurnConfig parameterises a churn run.
type ChurnConfig struct {
	// Rate is the target membership events per second (default 10).
	Rate float64
	// KillFraction is the fraction of the initial membership allowed to
	// be dead (crashed, unrevived) at once, in (0,1] (default 0.25).
	KillFraction float64
	// Protected is how many leading member indices are off-limits —
	// the bootstrap node and every node driven by a load worker.
	Protected int
	// Seed drives every random choice of the churner.
	Seed int64
	// Node configures freshly joining nodes (zero value: defaults).
	Node kademlia.Config
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Rate <= 0 {
		c.Rate = 10
	}
	if c.KillFraction <= 0 || c.KillFraction > 1 {
		c.KillFraction = 0.25
	}
	if c.Protected < 1 {
		c.Protected = 1
	}
	return c
}

// ChurnStats counts the membership events one churn run performed.
type ChurnStats struct {
	Crashes, Leaves, Revives, Joins int64
}

func (s ChurnStats) String() string {
	return fmt.Sprintf("%d crashes, %d graceful leaves, %d revives, %d joins",
		s.Crashes, s.Leaves, s.Revives, s.Joins)
}

// ParseChurnSpec parses the CLI form "rate,kill-fraction" (for example
// "20,0.25") into a ChurnConfig with the remaining fields zero.
func ParseChurnSpec(spec string) (ChurnConfig, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return ChurnConfig{}, fmt.Errorf(`loadgen: churn spec %q: want "rate,kill-fraction"`, spec)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil || rate <= 0 {
		return ChurnConfig{}, fmt.Errorf("loadgen: churn rate %q: want a positive events/sec", parts[0])
	}
	frac, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil || frac <= 0 || frac > 1 {
		return ChurnConfig{}, fmt.Errorf("loadgen: kill fraction %q: want a value in (0,1]", parts[1])
	}
	return ChurnConfig{Rate: rate, KillFraction: frac}, nil
}

// NewChurner prepares a churner over cl. Call Run to start.
func NewChurner(cl *kademlia.Cluster, cfg ChurnConfig) (*Churner, error) {
	cfg = cfg.withDefaults()
	n := cl.Len()
	if cfg.Protected >= n {
		return nil, fmt.Errorf("loadgen: %d protected nodes leave no churnable ones (membership %d)", cfg.Protected, n)
	}
	maxDead := int(cfg.KillFraction * float64(n))
	if maxDead < 1 {
		maxDead = 1
	}
	if spare := n - cfg.Protected - 1; maxDead > spare {
		maxDead = spare
	}
	return &Churner{cl: cl, cfg: cfg, baseline: n, maxDead: maxDead}, nil
}

// Run performs membership events at the configured rate until ctx is
// cancelled. It blocks; run it in a goroutine alongside the workload.
func (c *Churner) Run(ctx context.Context) {
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	interval := time.Duration(float64(time.Second) / c.cfg.Rate)
	timer := time.NewTimer(c.wait(rng, interval))
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		c.step(ctx, rng)
		timer.Reset(c.wait(rng, interval))
	}
}

// wait jitters the inter-event interval by ±50% so events do not beat
// against the maintainers' own cadence.
func (c *Churner) wait(rng *rand.Rand, interval time.Duration) time.Duration {
	return interval/2 + time.Duration(rng.Int63n(int64(interval)))
}

// step performs one membership event, honoring the invariants: at most
// maxDead crashed nodes at once, never below Protected+1 members, and
// joins steer the membership back towards the baseline.
func (c *Churner) step(ctx context.Context, rng *rand.Rand) {
	c.mu.Lock()
	dead := len(c.crashed)
	c.mu.Unlock()
	live := c.cl.Len()

	switch {
	case dead > 0 && rng.Float64() < 0.35:
		c.revive(ctx, rng)
	case live+dead < c.baseline:
		c.join(ctx, rng) // graceful leaves shrank the population; replace them
	case dead < c.maxDead && live > c.cfg.Protected+1:
		if rng.Float64() < 0.25 {
			c.leave(ctx, rng)
		} else {
			c.crash(rng)
		}
	case dead > 0:
		c.revive(ctx, rng)
	default:
		c.join(ctx, rng)
	}
}

// victim picks a random churnable member index; callers hold no lock,
// so the pick may go stale — the cluster returns an error then and the
// event is simply skipped.
func (c *Churner) victim(rng *rand.Rand) (int, bool) {
	n := c.cl.Len()
	if n <= c.cfg.Protected {
		return 0, false
	}
	return c.cfg.Protected + rng.Intn(n-c.cfg.Protected), true
}

func (c *Churner) crash(rng *rand.Rand) {
	i, ok := c.victim(rng)
	if !ok {
		return
	}
	n, err := c.cl.Crash(i)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.crashed = append(c.crashed, n)
	c.mu.Unlock()
	c.crashes.Add(1)
}

func (c *Churner) leave(ctx context.Context, rng *rand.Rand) {
	i, ok := c.victim(rng)
	if !ok {
		return
	}
	// A non-nil node means the member left, even when the handoff
	// report (ErrHandoffIncomplete) is non-nil — under churn an
	// unacked handoff is expected and healed by republish.
	if n, _ := c.cl.RemoveNode(ctx, i); n != nil {
		c.leaves.Add(1)
	}
}

func (c *Churner) revive(ctx context.Context, rng *rand.Rand) {
	c.mu.Lock()
	if len(c.crashed) == 0 {
		c.mu.Unlock()
		return
	}
	i := rng.Intn(len(c.crashed))
	n := c.crashed[i]
	c.crashed = append(c.crashed[:i], c.crashed[i+1:]...)
	c.mu.Unlock()
	if _, err := c.cl.Revive(ctx, n, 0); err != nil {
		// Bootstrap through node 0 failed; put the node back in the
		// crashed pool rather than losing track of it. On a durable
		// cluster the node's disk state is untouched, so the retry
		// recovers the same blocks.
		c.mu.Lock()
		c.crashed = append(c.crashed, n)
		c.mu.Unlock()
		return
	}
	c.revives.Add(1)
}

func (c *Churner) join(ctx context.Context, rng *rand.Rand) {
	if _, err := c.cl.AddNode(ctx, c.cfg.Node, rng.Int63(), 0); err == nil {
		c.joins.Add(1)
	}
}

// ReviveAll brings every still-crashed node back (used between load
// mixes, so each mix starts against a whole overlay). Nodes whose
// bootstrap fails stay in the crashed pool.
func (c *Churner) ReviveAll(ctx context.Context) {
	c.mu.Lock()
	pending := c.crashed
	c.crashed = nil
	c.mu.Unlock()
	for _, n := range pending {
		if _, err := c.cl.Revive(ctx, n, 0); err != nil {
			c.mu.Lock()
			c.crashed = append(c.crashed, n)
			c.mu.Unlock()
			continue
		}
		c.revives.Add(1)
	}
}

// DeadCount returns how many crashed nodes are currently unrevived.
func (c *Churner) DeadCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.crashed)
}

// Stats returns the membership events performed so far.
func (c *Churner) Stats() ChurnStats {
	return ChurnStats{
		Crashes: c.crashes.Load(),
		Leaves:  c.leaves.Load(),
		Revives: c.revives.Load(),
		Joins:   c.joins.Load(),
	}
}
