package loadgen

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dharma/internal/core"
	"dharma/internal/dataset"
	"dharma/internal/dht"
	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// localEngines builds n engines sharing one in-process block store —
// the cheapest target that still exercises cross-engine contention.
func localEngines(t *testing.T, n int) []*core.Engine {
	t.Helper()
	store := dht.NewLocal()
	engines := make([]*core.Engine, n)
	for i := range engines {
		e, err := core.NewEngine(store, core.Config{Mode: core.Approximated, K: 3, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return engines
}

func TestMixByName(t *testing.T) {
	for _, m := range Mixes() {
		got, err := MixByName(m.Name)
		if err != nil {
			t.Fatalf("MixByName(%q): %v", m.Name, err)
		}
		if got != m {
			t.Fatalf("MixByName(%q) = %+v, want %+v", m.Name, got, m)
		}
	}
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("MixByName accepted an unknown mix")
	}
}

func TestMixPickRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var counts [numOpKinds]int
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[TagHeavy.pick(rng)]++
	}
	// TagHeavy is 5/75/10/10: tagging must dominate and every kind
	// must appear.
	if counts[OpTag] < draws/2 {
		t.Fatalf("tag drawn %d of %d times, want a majority", counts[OpTag], draws)
	}
	for k, c := range counts {
		if c == 0 {
			t.Fatalf("operation %v never drawn", OpKind(k))
		}
	}
}

func TestRunReportsEveryMix(t *testing.T) {
	engines := localEngines(t, 3)
	for _, mix := range Mixes() {
		mix := mix
		t.Run(mix.Name, func(t *testing.T) {
			cfg := Config{Mix: mix, Workers: 4, Ops: 400, Seed: 11, Resources: 32, Tags: 16}
			rep, err := Run(context.Background(), cfg, engines)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops != cfg.Ops {
				t.Fatalf("Ops = %d, want %d", rep.Ops, cfg.Ops)
			}
			if rep.Errors != 0 || rep.FirstError != nil {
				t.Fatalf("errors: %d (first: %v)", rep.Errors, rep.FirstError)
			}
			if rep.Throughput <= 0 {
				t.Fatalf("throughput = %f", rep.Throughput)
			}
			if rep.Overall.N != cfg.Ops {
				t.Fatalf("latency sample N = %d, want %d", rep.Overall.N, cfg.Ops)
			}
			if rep.Overall.P50 > rep.Overall.P99 || rep.Overall.P99 > rep.Overall.Max {
				t.Fatalf("percentiles out of order: %+v", rep.Overall)
			}
			perOp := 0
			for _, op := range rep.PerOp {
				perOp += op.Count
			}
			if perOp != cfg.Ops {
				t.Fatalf("per-op counts sum to %d, want %d", perOp, cfg.Ops)
			}
			out := rep.String()
			for _, want := range []string{mix.Name, "ops/sec", "p50=", "p99="} {
				if !strings.Contains(out, want) {
					t.Fatalf("report missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestRunWithDatasetVocabulary(t *testing.T) {
	d := dataset.Generate(dataset.Tiny(3))
	cfg := Config{Mix: NavigateHeavy, Workers: 4, Ops: 300, Seed: 5,
		Resources: 40, Tags: 24, Dataset: d}
	rep, err := Run(context.Background(), cfg, localEngines(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d (first: %v)", rep.Errors, rep.FirstError)
	}
	var b bytes.Buffer
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Header, overall, and one row per op kind that ran.
	if len(lines) < 2+len(rep.PerOp)-1 {
		t.Fatalf("csv too short:\n%s", b.String())
	}
	if !strings.HasPrefix(lines[1], "navigate-heavy,overall,") {
		t.Fatalf("unexpected overall row: %q", lines[1])
	}
}

// failingGetStore accepts writes but fails every read — a stand-in for
// an overlay whose lookups started failing under load.
type failingGetStore struct{}

func (failingGetStore) Append(context.Context, kadid.ID, []wire.Entry) error { return nil }
func (failingGetStore) AppendBatch(context.Context, []dht.BatchItem) error   { return nil }
func (failingGetStore) Get(context.Context, kadid.ID, int) ([]wire.Entry, error) {
	return nil, errors.New("store down")
}

func TestNavigateFailuresAreCounted(t *testing.T) {
	e, err := core.NewEngine(failingGetStore{}, core.Config{Mode: core.Approximated, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Resources ≥ Tags so seeding stays on the (append-only) insert
	// path; the measured phase is pure navigation.
	rep, err := Run(context.Background(), Config{
		Mix:     Mix{Name: "nav-only", Navigate: 1},
		Workers: 2, Ops: 50, Seed: 1, Resources: 8, Tags: 4,
	}, []*core.Engine{e})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != rep.Ops {
		t.Fatalf("Errors = %d of %d ops — navigate lookup failures went uncounted", rep.Errors, rep.Ops)
	}
	if rep.FirstError == nil {
		t.Fatal("FirstError not retained")
	}
}

func TestRunRejectsEmptyEngineSet(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, nil); err == nil {
		t.Fatal("Run accepted an empty engine set")
	}
}

func TestRunDeterministicOpCounts(t *testing.T) {
	// Same seed, same mix → the same multiset of operations must run
	// (latencies differ; counts must not).
	a, err := Run(context.Background(), Config{Mix: Mixed, Workers: 1, Ops: 200, Seed: 9}, localEngines(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), Config{Mix: Mixed, Workers: 1, Ops: 200, Seed: 9}, localEngines(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.PerOp) != len(b.PerOp) {
		t.Fatalf("per-op shapes differ: %d vs %d", len(a.PerOp), len(b.PerOp))
	}
	for i := range a.PerOp {
		if a.PerOp[i].Kind != b.PerOp[i].Kind || a.PerOp[i].Count != b.PerOp[i].Count {
			t.Fatalf("op %d: %v×%d vs %v×%d", i,
				a.PerOp[i].Kind, a.PerOp[i].Count, b.PerOp[i].Kind, b.PerOp[i].Count)
		}
	}
}
