package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/metrics"
	"dharma/internal/simnet"
)

// ScaleConfig parameterises a `dharma-bench scale` sweep: for each node
// count an overlay is wired up (BootstrapWired — construction stays
// O(n·log n)) and probed with sequential iterative lookups, measuring
// how hop count and lookup latency grow with n.
type ScaleConfig struct {
	// Sizes are the node counts to sweep (default 100, 1000, 10000).
	Sizes []int
	// Lookups per size (default 1000).
	Lookups int
	// Seed fixes identifiers, targets and origins.
	Seed int64
	// K and Alpha are the overlay parameters (defaults kademlia's).
	K, Alpha int
	// LatencyMin/LatencyMax shape the simulated per-exchange latency
	// (accounted, not slept; defaults 50–200µs).
	LatencyMin, LatencyMax time.Duration
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{100, 1000, 10000}
	}
	if c.Lookups <= 0 {
		c.Lookups = 1000
	}
	if c.K <= 0 {
		c.K = kademlia.DefaultK
	}
	if c.Alpha <= 0 {
		c.Alpha = kademlia.DefaultAlpha
	}
	if c.LatencyMin <= 0 {
		c.LatencyMin = 50 * time.Microsecond
	}
	if c.LatencyMax < c.LatencyMin {
		c.LatencyMax = 4 * c.LatencyMin
	}
	return c
}

// Dist is a distribution summary serialised into the scale report.
type Dist struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func distOf(v []float64) Dist {
	if len(v) == 0 {
		return Dist{}
	}
	sum, max := 0.0, v[0]
	for _, x := range v {
		sum += x
		if x > max {
			max = x
		}
	}
	return Dist{
		Mean: sum / float64(len(v)),
		P50:  metrics.Percentile(v, 50),
		P90:  metrics.Percentile(v, 90),
		P99:  metrics.Percentile(v, 99),
		Max:  max,
	}
}

// ScalePoint is the measurement at one node count.
type ScalePoint struct {
	Nodes   int     `json:"nodes"`
	BuildMS float64 `json:"build_ms"` // wall time to construct + wire the overlay
	Lookups int     `json:"lookups"`
	// Hops: lookup rounds per lookup (one α-wide query wave per round —
	// the O(log n) quantity of the Kademlia paper).
	Hops Dist `json:"hops"`
	// WallMicros: wall-clock µs per lookup (simnet latency is accounted,
	// not slept, so this is the compute cost of a lookup).
	WallMicros Dist `json:"wall_us"`
	// SimRTTMicros: accumulated simulated network round-trip µs per
	// lookup — what the lookup would spend on the wire.
	SimRTTMicros Dist `json:"sim_rtt_us"`
	// MsgsPerLookup: mean RPC exchanges one lookup costs.
	MsgsPerLookup float64 `json:"msgs_per_lookup"`
}

// ScaleReport is the full sweep, serialised to BENCH_scale.json.
type ScaleReport struct {
	Seed    int64        `json:"seed"`
	K       int          `json:"k"`
	Alpha   int          `json:"alpha"`
	Points  []ScalePoint `json:"points"`
	Elapsed float64      `json:"elapsed_sec"`
}

// RunScale executes the sweep. Lookups run sequentially so per-lookup
// message counts can be read off the network's global counters as
// deltas.
func RunScale(ctx context.Context, cfg ScaleConfig) (*ScaleReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &ScaleReport{Seed: cfg.Seed, K: cfg.K, Alpha: cfg.Alpha}

	for _, n := range cfg.Sizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		buildStart := time.Now()
		cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
			N:    n,
			Node: kademlia.Config{K: cfg.K, Alpha: cfg.Alpha},
			Net: simnet.Config{
				LatencyMin: cfg.LatencyMin,
				LatencyMax: cfg.LatencyMax,
				Seed:       cfg.Seed,
			},
			Seed:      cfg.Seed,
			Bootstrap: kademlia.BootstrapWired,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: build %d-node overlay: %w", n, err)
		}
		pt := ScalePoint{Nodes: n, BuildMS: float64(time.Since(buildStart).Microseconds()) / 1e3, Lookups: cfg.Lookups}

		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		hops := make([]float64, 0, cfg.Lookups)
		wall := make([]float64, 0, cfg.Lookups)
		rtts := make([]float64, 0, cfg.Lookups)
		callsBefore := cl.Net.Counters().Calls
		for i := 0; i < cfg.Lookups; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			origin := cl.Nodes[rng.Intn(len(cl.Nodes))]
			target := kadid.Random(rng)

			r0 := origin.LookupRounds()
			c0 := cl.Net.Counters().SimulatedRTT
			t0 := time.Now()
			if got := origin.IterativeFindNode(ctx, target); len(got) == 0 && ctx.Err() == nil {
				return nil, fmt.Errorf("loadgen: lookup %d on %d-node overlay found no contacts", i, n)
			}
			wall = append(wall, float64(time.Since(t0).Microseconds()))
			hops = append(hops, float64(origin.LookupRounds()-r0))
			rtts = append(rtts, float64((cl.Net.Counters().SimulatedRTT - c0).Microseconds()))
		}
		pt.MsgsPerLookup = float64(cl.Net.Counters().Calls-callsBefore) / float64(cfg.Lookups)
		pt.Hops = distOf(hops)
		pt.WallMicros = distOf(wall)
		pt.SimRTTMicros = distOf(rtts)
		rep.Points = append(rep.Points, pt)
	}
	rep.Elapsed = time.Since(start).Seconds()
	return rep, nil
}

// String renders the sweep as the hop-count-vs-n table the README
// quotes.
func (r *ScaleReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scale sweep (k=%d, α=%d, seed=%d)\n", r.K, r.Alpha, r.Seed)
	fmt.Fprintf(&b, "%8s %10s %9s %9s %9s %11s %11s %9s\n",
		"nodes", "build", "hops p50", "hops p99", "hops max", "wall p50", "wall p99", "msgs/op")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %9.0fms %9.0f %9.0f %9.0f %10.0fµs %10.0fµs %9.1f\n",
			p.Nodes, p.BuildMS, p.Hops.P50, p.Hops.P99, p.Hops.Max,
			p.WallMicros.P50, p.WallMicros.P99, p.MsgsPerLookup)
	}
	fmt.Fprintf(&b, "total %.1fs\n", r.Elapsed)
	return b.String()
}

// WriteJSON writes the machine-readable report (BENCH_scale.json).
func (r *ScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
