package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/core"
	"dharma/internal/dataset"
	"dharma/internal/metrics"
	"dharma/internal/search"
	"dharma/internal/wire"
)

// Config parameterises one load run.
type Config struct {
	// Mix is the operation blend (default Mixed).
	Mix Mix
	// Workers is the goroutine pool size (default 8).
	Workers int
	// Ops is the total number of measured operations across all workers
	// (default 4096).
	Ops int
	// Seed drives every random choice of the run.
	Seed int64

	// Resources is the size of the pre-seeded resource universe
	// (default 128). Tag and navigate operations target these.
	Resources int
	// Tags is the vocabulary size (default 48). Popularity is Zipf:
	// low-indexed tags are hot, so workers contend on their blocks.
	Tags int
	// TagZipfS is the Zipf exponent over the vocabulary (>1; default
	// 1.2), TagZipfV the offset (≥1; default 2). Larger V flattens the
	// head.
	TagZipfS, TagZipfV float64
	// TagsPerInsert is how many tags a fresh resource is born with
	// (default 3).
	TagsPerInsert int
	// NavigateSteps bounds each faceted walk (default 6).
	NavigateSteps int

	// HotPrefill, when positive, pre-fills the t̄ blocks of the Zipf
	// head (the hotPrefillTags hottest tags) with this many synthetic
	// resource arcs each before measuring. Real hot tags accumulate
	// blocks of tens of thousands of entries; prefilling reproduces
	// that regime so the measured phase exercises index-side filtering
	// on large blocks instead of freshly seeded small ones.
	HotPrefill int

	// Dataset, when set, replaces the synthetic vocabulary: resource
	// and tag names are drawn from the generated workload (§V-A
	// shapes), capped at Resources and Tags respectively. Name order in
	// a Dataset is first-use order, which correlates with popularity,
	// so the Zipf draw still lands on genuinely popular tags.
	Dataset *dataset.Dataset

	// AfterSeed, when set, runs after the vocabulary is seeded (and the
	// hot blocks prefilled) but before the measured phase starts. The
	// churn scenario uses it to hold membership steady through seeding
	// and start killing nodes only once the workload is live.
	AfterSeed func()
}

func (c Config) withDefaults() Config {
	if c.Mix.total() <= 0 {
		c.Mix = Mixed
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Ops <= 0 {
		c.Ops = 4096
	}
	if c.Resources <= 0 {
		c.Resources = 128
	}
	if c.Tags <= 0 {
		c.Tags = 48
	}
	if c.TagZipfS <= 1 {
		c.TagZipfS = 1.2
	}
	if c.TagZipfV < 1 {
		c.TagZipfV = 2
	}
	if c.TagsPerInsert <= 0 {
		c.TagsPerInsert = 3
	}
	if c.NavigateSteps <= 0 {
		c.NavigateSteps = 6
	}
	return c
}

// vocabulary is the shared name universe of one run.
type vocabulary struct {
	resources []string
	tags      []string
}

func buildVocabulary(cfg Config) vocabulary {
	var v vocabulary
	if d := cfg.Dataset; d != nil {
		v.resources = capped(d.ResourceNames, cfg.Resources)
		v.tags = capped(d.TagNames, cfg.Tags)
	}
	for i := len(v.resources); i < cfg.Resources; i++ {
		v.resources = append(v.resources, fmt.Sprintf("lr%d", i))
	}
	for i := len(v.tags); i < cfg.Tags; i++ {
		v.tags = append(v.tags, fmt.Sprintf("lt%d", i))
	}
	return v
}

func capped(names []string, n int) []string {
	if len(names) > n {
		names = names[:n]
	}
	return append([]string(nil), names...)
}

// Run seeds the vocabulary and then drives engines with cfg.Workers
// goroutines until cfg.Ops operations have completed, measuring each
// operation's wall-clock latency. Engines are assigned to workers
// round-robin (worker w drives engines[w % len(engines)]), matching the
// one-client-per-peer model of the paper's evaluation.
//
// ctx bounds the whole run: it is handed to every operation, workers
// stop drawing new work once it ends, and Run returns ctx.Err() — so a
// Ctrl-C on the bench aborts the in-flight operations rather than
// waiting out the op budget.
func Run(ctx context.Context, cfg Config, engines []*core.Engine) (*Report, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("loadgen: no engines to drive")
	}
	cfg = cfg.withDefaults()
	vocab := buildVocabulary(cfg)

	rep := &Report{
		Mix:     cfg.Mix,
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
	}

	// Seeding: every resource is inserted with its deterministic tag
	// (tag i lives on resource i mod R, so each tag's blocks exist
	// before a navigate can start from it) plus Zipf-drawn extras.
	seedStart := time.Now()
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	seedZipf := rand.NewZipf(seedRng, cfg.TagZipfS, cfg.TagZipfV, uint64(len(vocab.tags)-1))
	for i, r := range vocab.resources {
		tags := []string{vocab.tags[i%len(vocab.tags)]}
		for len(tags) < cfg.TagsPerInsert {
			tags = append(tags, vocab.tags[seedZipf.Uint64()])
		}
		if err := engines[i%len(engines)].InsertResource(ctx, r, "uri:"+r, tags...); err != nil {
			return nil, fmt.Errorf("loadgen: seed %q: %w", r, err)
		}
	}
	// Tags beyond the resource count still need their blocks: attach
	// them to existing resources.
	for i := len(vocab.resources); i < len(vocab.tags); i++ {
		r := vocab.resources[i%len(vocab.resources)]
		if err := engines[i%len(engines)].Tag(ctx, r, vocab.tags[i]); err != nil {
			return nil, fmt.Errorf("loadgen: seed tag %q: %w", vocab.tags[i], err)
		}
	}
	if cfg.HotPrefill > 0 {
		if err := prefillHotBlocks(ctx, cfg, vocab, engines[0]); err != nil {
			return nil, err
		}
	}
	rep.SeedTime = time.Since(seedStart)
	if cfg.AfterSeed != nil {
		cfg.AfterSeed()
	}

	var (
		issued   atomic.Int64 // operations handed out
		inserted atomic.Int64 // fresh-resource name sequence
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	workers := make([]*workerState, cfg.Workers)

	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		ws := newWorkerState(cfg, int64(w))
		workers[w] = ws
		engine := engines[w%len(engines)]
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				n := issued.Add(1)
				if n > int64(cfg.Ops) {
					return
				}
				kind := cfg.Mix.pick(ws.rng)
				opStart := time.Now()
				err := ws.runOp(ctx, kind, engine, vocab, &inserted)
				ws.lat[kind].Observe(time.Since(opStart))
				ws.count[kind]++
				if err != nil {
					ws.errs[kind]++
					errOnce.Do(func() { firstErr = err })
				}
			}
		}(w)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep.aggregate(workers)
	rep.FirstError = firstErr
	return rep, nil
}

// hotPrefillTags is how many head-of-Zipf tags HotPrefill inflates.
const hotPrefillTags = 4

// prefillChunk bounds one prefill append; large blocks are built in
// chunks so overlay targets never push a single oversized RPC through
// an MTU-limited transport.
const prefillChunk = 256

// prefillHotBlocks appends cfg.HotPrefill synthetic resource arcs to
// the t̄ blocks of the hottest tags, writing through the engine's store
// so the entries land wherever a deployment would put them (local shard
// or replica set). Every SearchStep on a hot tag then runs its
// index-side top-N filter against a block of tens of thousands of
// entries — the regime the store's incremental index exists for. Only
// t̄ (tag→resources) is inflated: its entries are resource names, which
// navigation intersects but never looks up, whereas synthetic entries
// in t̂ would be walked into as phantom tags and fail the run. Counts
// are varied so descending-count order is non-degenerate.
func prefillHotBlocks(ctx context.Context, cfg Config, vocab vocabulary, engine *core.Engine) error {
	st := engine.Store()
	nTags := hotPrefillTags
	if nTags > len(vocab.tags) {
		nTags = len(vocab.tags)
	}
	for ti := 0; ti < nTags; ti++ {
		tag := vocab.tags[ti]
		key := core.BlockKey(tag, core.BlockTagResources)
		for base := 0; base < cfg.HotPrefill; base += prefillChunk {
			n := cfg.HotPrefill - base
			if n > prefillChunk {
				n = prefillChunk
			}
			entries := make([]wire.Entry, n)
			for i := range entries {
				f := base + i
				entries[i] = wire.Entry{
					Field: fmt.Sprintf("hp%d", f),
					Count: uint64(f%9973 + 1),
				}
			}
			if err := st.Append(ctx, key, entries); err != nil {
				return fmt.Errorf("loadgen: prefill %q: %w", tag, err)
			}
		}
	}
	return nil
}

// workerState is the per-goroutine slice of the run: private randomness
// and private accounting, merged after the pool drains, so the measured
// path shares nothing but the system under test.
type workerState struct {
	rng        *rand.Rand
	zipf       *rand.Zipf
	steps      int
	insertTags int
	lat        [numOpKinds]*metrics.LatencyRecorder
	count      [numOpKinds]int
	errs       [numOpKinds]int
}

func newWorkerState(cfg Config, w int64) *workerState {
	rng := rand.New(rand.NewSource(cfg.Seed ^ (w+1)*0x9e3779b97f4a7c)) // per-worker seed mix
	ws := &workerState{
		rng:        rng,
		zipf:       rand.NewZipf(rng, cfg.TagZipfS, cfg.TagZipfV, uint64(cfg.Tags-1)),
		steps:      cfg.NavigateSteps,
		insertTags: cfg.TagsPerInsert,
	}
	for k := range ws.lat {
		ws.lat[k] = &metrics.LatencyRecorder{}
	}
	return ws
}

func (ws *workerState) hotTag(vocab vocabulary) string {
	return vocab.tags[int(ws.zipf.Uint64())%len(vocab.tags)]
}

func (ws *workerState) runOp(ctx context.Context, kind OpKind, e *core.Engine, vocab vocabulary, inserted *atomic.Int64) error {
	switch kind {
	case OpInsert:
		name := fmt.Sprintf("ins%d", inserted.Add(1))
		tags := make([]string, 0, ws.insertTags)
		for len(tags) < cap(tags) {
			tags = append(tags, ws.hotTag(vocab))
		}
		return e.InsertResource(ctx, name, "uri:"+name, tags...)
	case OpTag:
		r := vocab.resources[ws.rng.Intn(len(vocab.resources))]
		return e.Tag(ctx, r, ws.hotTag(vocab))
	case OpNavigate:
		view := search.NewEngineView(ctx, e)
		if _, err := search.Run(ctx, view, ws.hotTag(vocab), search.Random, search.Options{
			MaxSteps: ws.steps,
			Rng:      ws.rng,
		}); err != nil {
			return err
		}
		// The walk itself only errors on cancellation; the view retains
		// any lookup failure it had to swallow mid-walk.
		return view.Err()
	default: // OpSearch
		_, _, err := e.SearchStep(ctx, ws.hotTag(vocab))
		return err
	}
}
