// Package loadgen drives a DHARMA deployment with configurable parallel
// workloads and reports per-operation latency and throughput. It is the
// measurement harness behind `dharma-bench load`: you cannot optimise a
// hot path you cannot drive concurrently, so every scaling PR
// (sharding, batching, caching) is evaluated against these workloads.
//
// A workload is a weighted mix of the paper's primitives — resource
// insertion, tagging, faceted navigation and single search steps — run
// by a pool of workers against a set of engines (one engine per
// simulated client). Tag popularity follows a Zipf law, mirroring the
// heavy-tailed vocabularies of §V-A, so concurrent workers naturally
// collide on the same hot blocks; that contention is exactly what the
// harness exists to measure.
package loadgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// OpKind identifies one primitive of the workload.
type OpKind int

// The four operations a workload mixes.
const (
	OpInsert   OpKind = iota // InsertResource: 2+2m lookups
	OpTag                    // Tag: the 4+k hot path
	OpNavigate               // full faceted walk: 2 lookups per step
	OpSearch                 // single SearchStep: 2 lookups
	numOpKinds
)

// String names the operation.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpTag:
		return "tag"
	case OpNavigate:
		return "navigate"
	case OpSearch:
		return "search"
	default:
		return fmt.Sprintf("op-%d", int(k))
	}
}

// Mix is a weighted blend of operations. Weights are relative; they
// need not sum to anything particular.
type Mix struct {
	Name                          string
	Insert, Tag, Navigate, Search int
}

// The standard workload mixes.
var (
	// InsertHeavy models a bootstrap phase: mostly new resources.
	InsertHeavy = Mix{Name: "insert-heavy", Insert: 70, Tag: 15, Navigate: 10, Search: 5}
	// TagHeavy models a mature folksonomy: users annotate existing
	// resources — the 4+k path the approximations exist for.
	TagHeavy = Mix{Name: "tag-heavy", Insert: 5, Tag: 75, Navigate: 10, Search: 10}
	// NavigateHeavy models a read-mostly audience browsing the graph.
	NavigateHeavy = Mix{Name: "navigate-heavy", Insert: 5, Tag: 15, Navigate: 60, Search: 20}
	// Mixed is the balanced default.
	Mixed = Mix{Name: "mixed", Insert: 15, Tag: 45, Navigate: 25, Search: 15}
	// HotTag concentrates the run on the skew the store is built for:
	// no fresh resources, heavy tagging and top-N reads of the same
	// Zipf-popular vocabulary. Combined with Config.HotPrefill it keeps
	// the hottest blocks tens of thousands of entries large, so every
	// search step exercises the storage node's index-side filtering on a
	// big block rather than a toy one.
	HotTag = Mix{Name: "hot-tag", Insert: 0, Tag: 40, Navigate: 20, Search: 40}
)

// Mixes returns the standard mixes in presentation order.
func Mixes() []Mix { return []Mix{InsertHeavy, TagHeavy, NavigateHeavy, Mixed, HotTag} }

// MixByName resolves a standard mix by its Name.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	known := make([]string, 0, len(Mixes()))
	for _, m := range Mixes() {
		known = append(known, m.Name)
	}
	return Mix{}, fmt.Errorf("loadgen: unknown mix %q (known: %s)", name, strings.Join(known, ", "))
}

// total returns the weight sum; a Mix with no positive weight is invalid.
func (m Mix) total() int { return m.Insert + m.Tag + m.Navigate + m.Search }

// pick draws one operation kind proportionally to the weights.
func (m Mix) pick(rng *rand.Rand) OpKind {
	n := rng.Intn(m.total())
	switch {
	case n < m.Insert:
		return OpInsert
	case n < m.Insert+m.Tag:
		return OpTag
	case n < m.Insert+m.Tag+m.Navigate:
		return OpNavigate
	default:
		return OpSearch
	}
}
