package loadgen

import (
	"context"
	"testing"
	"time"

	"dharma/internal/kademlia"
)

func TestParseChurnSpec(t *testing.T) {
	cc, err := ParseChurnSpec("20,0.25")
	if err != nil {
		t.Fatal(err)
	}
	if cc.Rate != 20 || cc.KillFraction != 0.25 {
		t.Fatalf("parsed %+v", cc)
	}
	for _, bad := range []string{"", "20", "20,0.25,3", "x,0.25", "20,y", "-1,0.25", "20,0", "20,1.5"} {
		if _, err := ParseChurnSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestChurnerRespectsProtectionAndKillCap(t *testing.T) {
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:    16,
		Node: kademlia.Config{K: 4, Alpha: 2},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	protected := make(map[*kademlia.Node]bool)
	for i := 0; i < 4; i++ {
		protected[cl.NodeAt(i)] = true
	}

	ch, err := NewChurner(cl, ChurnConfig{
		Rate:         400, // fast, so a short test sees many events
		KillFraction: 0.25,
		Protected:    4,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ch.Run(ctx)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ch.Stats()
		if st.Crashes >= 3 && st.Revives >= 1 && st.Crashes+st.Leaves+st.Joins >= 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("churner made too little progress: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done

	// The kill cap held throughout (checked at the end: DeadCount can
	// only have been larger mid-run if it is larger now or a revive
	// happened, and the cap is enforced before every crash).
	if dead := ch.DeadCount(); dead > 4 {
		t.Fatalf("%d dead nodes exceeds kill cap", dead)
	}
	// Protected members never left the membership and still answer.
	for i := 0; i < 4; i++ {
		n := cl.NodeAt(i)
		if n == nil || !protected[n] {
			t.Fatalf("protected prefix disturbed at index %d", i)
		}
	}
	for p := range protected {
		if !cl.NodeAt(0).Ping(context.Background(), p.Self()) && cl.NodeAt(0) != p {
			t.Fatalf("protected node %s unreachable", p.Self().Addr)
		}
	}

	ch.ReviveAll(context.Background())
	if ch.DeadCount() != 0 {
		t.Fatalf("%d nodes still dead after ReviveAll", ch.DeadCount())
	}
	// Every member is live again and addresses stayed unique.
	seen := make(map[string]bool)
	for _, n := range cl.Snapshot() {
		addr := n.Self().Addr
		if seen[addr] {
			t.Fatalf("duplicate address %q after churn", addr)
		}
		seen[addr] = true
	}
}

func TestNewChurnerRejectsFullyProtectedCluster(t *testing.T) {
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{N: 3, Node: kademlia.Config{K: 2, Alpha: 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChurner(cl, ChurnConfig{Protected: 3}); err == nil {
		t.Fatal("churner accepted a cluster with no churnable nodes")
	}
}
