package loadgen

import (
	"fmt"
	"io"
	"strings"
	"time"

	"dharma/internal/metrics"
)

// OpReport is the per-operation slice of a load report.
type OpReport struct {
	Kind    OpKind
	Count   int
	Errors  int
	Latency metrics.LatencySummary
}

// Report is the outcome of one load run.
type Report struct {
	Mix     Mix
	Workers int
	Seed    int64

	// SeedTime is the (unmeasured) vocabulary seeding phase; Elapsed is
	// the measured run.
	SeedTime, Elapsed time.Duration

	// Ops and Errors total the measured operations.
	Ops    int
	Errors int
	// FirstError is the first operation error observed, nil on a clean
	// run (counts in Errors/per-op Errors cover the rest).
	FirstError error

	// Throughput is Ops divided by Elapsed, in operations per second.
	Throughput float64
	// Overall summarises latency across every operation kind.
	Overall metrics.LatencySummary
	// PerOp holds one entry per operation kind that ran, in OpKind
	// order.
	PerOp []OpReport
}

// aggregate merges the workers' private accounting into the report.
func (r *Report) aggregate(workers []*workerState) {
	overall := &metrics.LatencyRecorder{}
	for kind := OpKind(0); kind < numOpKinds; kind++ {
		merged := &metrics.LatencyRecorder{}
		count, errs := 0, 0
		for _, ws := range workers {
			merged.Merge(ws.lat[kind])
			count += ws.count[kind]
			errs += ws.errs[kind]
		}
		r.Ops += count
		r.Errors += errs
		overall.Merge(merged)
		if count > 0 {
			r.PerOp = append(r.PerOp, OpReport{
				Kind:    kind,
				Count:   count,
				Errors:  errs,
				Latency: merged.Summary(),
			})
		}
	}
	r.Overall = overall.Summary()
	if r.Elapsed > 0 {
		r.Throughput = float64(r.Ops) / r.Elapsed.Seconds()
	}
}

// String renders the report as the table `dharma-bench load` prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %-14s  workers=%d  ops=%d  errors=%d  elapsed=%s  seed-phase=%s\n",
		r.Mix.Name, r.Workers, r.Ops, r.Errors, round(r.Elapsed), round(r.SeedTime))
	fmt.Fprintf(&b, "  throughput %.0f ops/sec   latency p50=%s p90=%s p99=%s max=%s\n",
		r.Throughput, round(r.Overall.P50), round(r.Overall.P90), round(r.Overall.P99), round(r.Overall.Max))
	for _, op := range r.PerOp {
		fmt.Fprintf(&b, "  %-9s %7d ops  %3d errs   p50=%-9s p90=%-9s p99=%-9s mean=%s\n",
			op.Kind, op.Count, op.Errors,
			round(op.Latency.P50), round(op.Latency.P90), round(op.Latency.P99), round(op.Latency.Mean))
	}
	return b.String()
}

// WriteCSV emits one row per operation kind plus an "overall" row, with
// latencies in microseconds.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "workload,op,count,errors,ops_per_sec,p50_us,p90_us,p99_us,mean_us,max_us"); err != nil {
		return err
	}
	row := func(op string, count, errs int, tput float64, s metrics.LatencySummary) error {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			r.Mix.Name, op, count, errs, tput,
			us(s.P50), us(s.P90), us(s.P99), us(s.Mean), us(s.Max))
		return err
	}
	if err := row("overall", r.Ops, r.Errors, r.Throughput, r.Overall); err != nil {
		return err
	}
	for _, op := range r.PerOp {
		if err := row(op.Kind.String(), op.Count, op.Errors, 0, op.Latency); err != nil {
			return err
		}
	}
	return nil
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// round trims a duration to a display-friendly precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(10 * time.Nanosecond)
	}
}
