package loadgen

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// overloadConfigFast keeps the scenario short enough for the test
// suite while still running calibration plus two open-loop phases.
func overloadConfigFast() OverloadConfig {
	return OverloadConfig{
		Multipliers:       []float64{1, 3},
		Duration:          150 * time.Millisecond,
		CalibrateDuration: 100 * time.Millisecond,
		Workers:           4,
		OpTimeout:         50 * time.Millisecond,
		Resources:         16,
		Tags:              8,
		Seed:              42,
	}
}

// TestRunOverloadLocalEngines drives the scenario against in-process
// engines: goodput must not collapse at 3x offered load (the local
// store has effectively infinite capacity, so this checks the
// generator's accounting, not admission).
func TestRunOverloadLocalEngines(t *testing.T) {
	engines := localEngines(t, 4)
	rep, err := RunOverload(context.Background(), overloadConfigFast(), engines, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Capacity <= 0 {
		t.Fatalf("calibrated capacity %.1f, want > 0", rep.Capacity)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("ran %d phases, want 2", len(rep.Phases))
	}
	for _, p := range rep.Phases {
		if p.Issued == 0 {
			t.Fatalf("phase %.1fx issued nothing", p.Multiplier)
		}
		if got := p.Succeeded + p.Busy + p.Deadline + p.Failed; got != p.Issued {
			t.Fatalf("phase %.1fx accounting: %d classified of %d issued", p.Multiplier, got, p.Issued)
		}
	}
	if problems := rep.Check(0.5, 200); len(problems) != 0 {
		t.Fatalf("local engines should survive 3x offered load: %v", problems)
	}
	// The report renders without panicking and names both phases.
	s := rep.String()
	if !strings.Contains(s, "capacity") || !strings.Contains(s, "3.0") {
		t.Fatalf("report missing expected fields:\n%s", s)
	}
}

// TestOverloadReportCheckFlagsCollapse: Check must fail a report whose
// goodput drops past tolerance, and one whose goroutines grew.
func TestOverloadReportCheckFlagsCollapse(t *testing.T) {
	rep := &OverloadReport{
		Capacity:           1000,
		BaselineGoroutines: 10,
		FinalGoroutines:    10,
		Phases: []OverloadPhase{
			{Multiplier: 1, Goodput: 1000},
			{Multiplier: 4, Goodput: 100},
		},
	}
	if problems := rep.Check(0.2, 100); len(problems) != 1 {
		t.Fatalf("collapsed goodput not flagged: %v", problems)
	}
	rep.Phases[1].Goodput = 900
	if problems := rep.Check(0.2, 100); len(problems) != 0 {
		t.Fatalf("flat curve flagged: %v", problems)
	}
	rep.FinalGoroutines = 500
	if problems := rep.Check(0.2, 100); len(problems) != 1 {
		t.Fatalf("goroutine growth not flagged: %v", problems)
	}
	if problems := (&OverloadReport{}).Check(0.2, 100); len(problems) == 0 {
		t.Fatal("empty report passed Check")
	}
}

// TestOverloadReportWriteCSV round-trips the phase table to disk.
func TestOverloadReportWriteCSV(t *testing.T) {
	rep := &OverloadReport{
		Capacity: 500,
		Phases: []OverloadPhase{
			{Multiplier: 1, Offered: 500, Issued: 100, Succeeded: 98, Goodput: 490},
			{Multiplier: 4, Offered: 2000, Issued: 400, Succeeded: 97, Busy: 300, Goodput: 485},
		},
	}
	path := filepath.Join(t.TempDir(), "overload.csv")
	if err := rep.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 phases", len(lines))
	}
	if !strings.HasPrefix(lines[0], "multiplier,") {
		t.Fatalf("CSV header wrong: %q", lines[0])
	}
}
