// Package dataset generates synthetic collaborative-tagging workloads
// shaped like the Last.fm snapshot the paper evaluates on (99 405
// users, ~11 M annotations, 1 413 657 resources, 285 182 tags). The real
// crawl is not redistributable, so experiments here run on a seeded
// generator that reproduces the *structural* properties §V-A reports:
//
//   - heavy-tailed degree distributions for Tags(r), Res(t) and N_FG(t)
//     (Table II, Figure 5);
//   - a strong core–periphery structure: ≈55 % of tags mark exactly one
//     resource, ≈40 % of resources carry exactly one tag, while a small
//     core of "rock"/"pop"-like tags labels a large share of everything.
//
// The model is a topic mixture: resources belong to topics, annotations
// pick a resource by Zipf popularity and then either a globally popular
// tag, a tag from the resource's topic pool (Zipf within the pool), or a
// fresh personal tag used exactly once. Every draw comes from one seeded
// source, so a Config is a complete, reproducible description of a
// workload.
package dataset

import (
	"fmt"
	"math/rand"

	"dharma/internal/folksonomy"
)

// Annotation is one ⟨user, item, tag⟩ triple of the raw dataset.
type Annotation struct {
	User     string
	Resource string
	Tag      string
}

// Config parameterises the generator.
type Config struct {
	Seed           int64
	Users          int
	Resources      int
	Annotations    int
	GlobalTags     int     // size of the popular core vocabulary
	Topics         int     // number of topic pools
	TagsPerTopic   int     // tags per topic pool
	ResourceZipfS  float64 // resource popularity exponent (>1)
	ResourceZipfV  float64 // resource Zipf offset (≥1); larger flattens the head
	TagZipfS       float64 // tag popularity exponent within pools (>1)
	SingletonProb  float64 // P(annotation invents a personal, one-shot tag)
	GlobalTagProb  float64 // P(annotation uses a global core tag)
	CrossTopicProb float64 // P(topic annotation borrows a neighbouring topic's tag)
}

// Tiny is a preset for unit tests: small enough to run in milliseconds,
// large enough to show the core–periphery shape.
func Tiny(seed int64) Config {
	return Config{
		Seed: seed, Users: 120, Resources: 300, Annotations: 2500,
		GlobalTags: 8, Topics: 6, TagsPerTopic: 18,
		ResourceZipfS: 1.25, ResourceZipfV: 4, TagZipfS: 1.3,
		SingletonProb: 0.03, GlobalTagProb: 0.22, CrossTopicProb: 0.08,
	}
}

// Small is the quick-experiment preset used by default test runs of the
// evaluation harness.
func Small(seed int64) Config {
	return Config{
		Seed: seed, Users: 1500, Resources: 6000, Annotations: 45000,
		GlobalTags: 25, Topics: 12, TagsPerTopic: 40,
		ResourceZipfS: 1.25, ResourceZipfV: 8, TagZipfS: 1.25,
		SingletonProb: 0.015, GlobalTagProb: 0.2, CrossTopicProb: 0.08,
	}
}

// LastFMScaled is the benchmark preset: a ≈30× reduction of the paper's
// crawl that preserves the annotations-per-resource and tags-per-
// resource ratios, sized to run the full experiment suite on a laptop.
func LastFMScaled(seed int64) Config {
	return Config{
		Seed: seed, Users: 8000, Resources: 45000, Annotations: 350000,
		GlobalTags: 60, Topics: 40, TagsPerTopic: 100,
		ResourceZipfS: 1.25, ResourceZipfV: 10, TagZipfS: 1.22,
		SingletonProb: 0.015, GlobalTagProb: 0.18, CrossTopicProb: 0.08,
	}
}

// Dataset is a generated workload: the raw annotation triples plus the
// vocabulary they draw from.
type Dataset struct {
	Config      Config
	Annotations []Annotation
	// TagNames is the set of tags actually used, in first-use order.
	TagNames []string
	// ResourceNames is the set of resources actually annotated, in
	// first-use order.
	ResourceNames []string
}

// Generate produces the workload described by cfg.
func Generate(cfg Config) *Dataset {
	if cfg.Resources <= 0 || cfg.Annotations <= 0 {
		panic("dataset: Resources and Annotations must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	resV := cfg.ResourceZipfV
	if resV < 1 {
		resV = 1
	}
	resZipf := rand.NewZipf(rng, cfg.ResourceZipfS, resV, uint64(cfg.Resources-1))
	globalZipf := rand.NewZipf(rng, cfg.TagZipfS, 1, uint64(max(cfg.GlobalTags-1, 1)))
	topicZipf := rand.NewZipf(rng, cfg.TagZipfS, 1, uint64(max(cfg.TagsPerTopic-1, 1)))

	// Resources are assigned topics with a mild skew so topic sizes vary.
	topicOf := make([]int, cfg.Resources)
	for i := range topicOf {
		a := rng.Intn(cfg.Topics)
		b := rng.Intn(cfg.Topics)
		topicOf[i] = min(a, b)
	}

	d := &Dataset{Config: cfg}
	seenTag := make(map[string]bool)
	seenRes := make(map[string]bool)
	touchTag := func(t string) {
		if !seenTag[t] {
			seenTag[t] = true
			d.TagNames = append(d.TagNames, t)
		}
	}
	touchRes := func(r string) {
		if !seenRes[r] {
			seenRes[r] = true
			d.ResourceNames = append(d.ResourceNames, r)
		}
	}

	singletons := 0
	d.Annotations = make([]Annotation, 0, cfg.Annotations)
	for i := 0; i < cfg.Annotations; i++ {
		ri := int(resZipf.Uint64())
		r := fmt.Sprintf("r%d", ri)
		user := fmt.Sprintf("u%d", rng.Intn(max(cfg.Users, 1)))

		var tag string
		switch p := rng.Float64(); {
		case p < cfg.SingletonProb:
			tag = fmt.Sprintf("p%d", singletons) // personal one-shot tag
			singletons++
		case p < cfg.SingletonProb+cfg.GlobalTagProb:
			tag = fmt.Sprintf("g%d", globalZipf.Uint64())
		default:
			topic := topicOf[ri]
			if rng.Float64() < cfg.CrossTopicProb {
				topic = (topic + 1 + rng.Intn(max(cfg.Topics-1, 1))) % cfg.Topics
			}
			tag = fmt.Sprintf("t%d.%d", topic, topicZipf.Uint64())
		}

		touchRes(r)
		touchTag(tag)
		d.Annotations = append(d.Annotations, Annotation{User: user, Resource: r, Tag: tag})
	}
	return d
}

// BuildGraph replays the whole workload through the theoretic
// maintenance rules of §III-B and returns the resulting TRG+FG. Every
// resource is created on first touch (with no tags), then each
// annotation is one tagging operation.
func (d *Dataset) BuildGraph() *folksonomy.Graph {
	g := folksonomy.New()
	for _, a := range d.Annotations {
		if !g.HasResource(a.Resource) {
			if err := g.InsertResource(a.Resource, "uri:"+a.Resource); err != nil {
				panic(err) // unreachable: guarded by HasResource
			}
		}
		if err := g.Tag(a.Resource, a.Tag); err != nil {
			panic(err) // unreachable: resource was just ensured
		}
	}
	return g
}

// Shuffled returns the annotation instances in a uniformly random order
// drawn from seed. This is the tagging schedule of the §V-B simulation:
// picking a resource proportionally to its remaining instances and then
// a tag proportionally to its remaining multiplicity is exactly a
// uniform random permutation of the instance multiset.
func (d *Dataset) Shuffled(seed int64) []Annotation {
	out := append([]Annotation(nil), d.Annotations...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Stats summarises the structural properties §V-A reports.
type Stats struct {
	Users, Resources, Tags, Annotations int

	// Degree samples for Table II / Figure 5.
	TagsPerResource []float64 // |Tags(r)| over resources
	ResPerTag       []float64 // |Res(t)| over tags
	NeighborsPerTag []float64 // |N_FG(t)| over tags

	// Core–periphery indicators (§V-A prose).
	SingletonTagFrac    float64 // tags marking exactly 1 resource
	SingleTagResourceFr float64 // resources carrying exactly 1 tag
}

// ComputeStats derives the §V-A statistics from a built graph.
func (d *Dataset) ComputeStats(g *folksonomy.Graph) Stats {
	st := Stats{
		Users:       d.Config.Users,
		Resources:   g.NumResources(),
		Tags:        g.NumTags(),
		Annotations: len(d.Annotations),
	}
	singleTagRes := 0
	for _, r := range g.ResourceNames() {
		deg := g.TagDegree(r)
		st.TagsPerResource = append(st.TagsPerResource, float64(deg))
		if deg == 1 {
			singleTagRes++
		}
	}
	singletonTags := 0
	for _, t := range g.TagNames() {
		rdeg := g.ResDegree(t)
		st.ResPerTag = append(st.ResPerTag, float64(rdeg))
		st.NeighborsPerTag = append(st.NeighborsPerTag, float64(g.NeighborDegree(t)))
		if rdeg == 1 {
			singletonTags++
		}
	}
	if g.NumTags() > 0 {
		st.SingletonTagFrac = float64(singletonTags) / float64(g.NumTags())
	}
	if g.NumResources() > 0 {
		st.SingleTagResourceFr = float64(singleTagRes) / float64(g.NumResources())
	}
	return st
}

// PopularTags returns the n tags with the largest Res(t) sets, the seed
// set of the §V-C convergence experiment ("the 100 most popular tags").
func PopularTags(g *folksonomy.Graph, n int) []string {
	ws := make([]folksonomy.Weighted, 0, g.NumTags())
	for _, t := range g.TagNames() {
		ws = append(ws, folksonomy.Weighted{Name: t, Weight: g.ResDegree(t)})
	}
	folksonomy.SortWeighted(ws)
	if len(ws) > n {
		ws = ws[:n]
	}
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
