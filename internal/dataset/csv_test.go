package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := Generate(Tiny(5))
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(got.Annotations, d.Annotations) {
		t.Fatal("annotations differ after round trip")
	}
	if !reflect.DeepEqual(got.TagNames, d.TagNames) {
		t.Fatal("tag name order differs after round trip")
	}
	if !reflect.DeepEqual(got.ResourceNames, d.ResourceNames) {
		t.Fatal("resource name order differs after round trip")
	}
}

func TestReadCSVValidation(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b,c\nu,r,t\n",
		"wrong fields": "user,item,tag\nu,r\n",
		"empty tag":    "user,item,tag\nu,r,\n",
		"no rows":      "user,item,tag\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Fatalf("%s: accepted %q", name, input)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	in := "user,item,tag\nu1,r1,t1\n\nu2,r1,t2\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Annotations) != 2 {
		t.Fatalf("got %d annotations, want 2", len(d.Annotations))
	}
	g := d.BuildGraph()
	if g.NumResources() != 1 || g.NumTags() != 2 {
		t.Fatalf("graph from CSV: R=%d T=%d", g.NumResources(), g.NumTags())
	}
}
