package dataset

import (
	"reflect"
	"testing"

	"dharma/internal/metrics"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Tiny(42))
	b := Generate(Tiny(42))
	if !reflect.DeepEqual(a.Annotations, b.Annotations) {
		t.Fatal("same seed produced different workloads")
	}
	c := Generate(Tiny(43))
	if reflect.DeepEqual(a.Annotations, c.Annotations) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := Tiny(1)
	d := Generate(cfg)
	if len(d.Annotations) != cfg.Annotations {
		t.Fatalf("annotations = %d, want %d", len(d.Annotations), cfg.Annotations)
	}
	if len(d.ResourceNames) == 0 || len(d.ResourceNames) > cfg.Resources {
		t.Fatalf("resources touched = %d, config max %d", len(d.ResourceNames), cfg.Resources)
	}
	if len(d.TagNames) == 0 {
		t.Fatal("no tags used")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty config")
		}
	}()
	Generate(Config{})
}

func TestBuildGraphConsistent(t *testing.T) {
	d := Generate(Tiny(2))
	g := d.BuildGraph()
	if g.NumResources() != len(d.ResourceNames) {
		t.Fatalf("graph resources = %d, dataset touched %d", g.NumResources(), len(d.ResourceNames))
	}
	if g.NumTags() != len(d.TagNames) {
		t.Fatalf("graph tags = %d, dataset used %d", g.NumTags(), len(d.TagNames))
	}
	// Total TRG weight equals the number of annotations.
	total := 0
	for _, r := range g.ResourceNames() {
		for _, w := range g.Tags(r) {
			total += w.Weight
		}
	}
	if total != len(d.Annotations) {
		t.Fatalf("total TRG weight = %d, want %d", total, len(d.Annotations))
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	d := Generate(Tiny(3))
	sh := d.Shuffled(9)
	if len(sh) != len(d.Annotations) {
		t.Fatal("shuffle changed length")
	}
	count := map[Annotation]int{}
	for _, a := range d.Annotations {
		count[a]++
	}
	for _, a := range sh {
		count[a]--
	}
	for a, c := range count {
		if c != 0 {
			t.Fatalf("annotation %+v multiplicity off by %d", a, c)
		}
	}
	// Order must differ (astronomically unlikely to match), and must be
	// reproducible under the same seed.
	if reflect.DeepEqual(sh, d.Annotations) {
		t.Fatal("shuffle left order unchanged")
	}
	if !reflect.DeepEqual(sh, d.Shuffled(9)) {
		t.Fatal("shuffle not deterministic under seed")
	}
}

func TestShapeCorePeriphery(t *testing.T) {
	// The generator must reproduce the §V-A structure: a large fraction
	// of singleton tags and single-tag resources, plus a popular core.
	d := Generate(Small(5))
	g := d.BuildGraph()
	st := d.ComputeStats(g)

	if st.SingletonTagFrac < 0.35 || st.SingletonTagFrac > 0.75 {
		t.Fatalf("singleton tag fraction %.2f outside [0.35, 0.75] (paper: ~0.55)", st.SingletonTagFrac)
	}
	if st.SingleTagResourceFr < 0.2 || st.SingleTagResourceFr > 0.6 {
		t.Fatalf("single-tag resource fraction %.2f outside [0.2, 0.6] (paper: ~0.40)", st.SingleTagResourceFr)
	}

	// Heavy tails: max degree far above mean.
	res := metrics.Summarize(st.ResPerTag)
	if res.Max < 10*res.Mean {
		t.Fatalf("Res(t) not heavy-tailed: max %.0f, mean %.1f", res.Max, res.Mean)
	}
	tpr := metrics.Summarize(st.TagsPerResource)
	if tpr.Max < 5*tpr.Mean {
		t.Fatalf("Tags(r) not heavy-tailed: max %.0f, mean %.1f", tpr.Max, tpr.Mean)
	}

	// The FG core: popular tags see many times more neighbours than the
	// median tag.
	nfg := metrics.Summarize(st.NeighborsPerTag)
	if nfg.Max < 5*nfg.Median+1 {
		t.Fatalf("N_FG(t) lacks a connected core: max %.0f, median %.0f", nfg.Max, nfg.Median)
	}
}

func TestStatsSampleSizes(t *testing.T) {
	d := Generate(Tiny(6))
	g := d.BuildGraph()
	st := d.ComputeStats(g)
	if len(st.TagsPerResource) != g.NumResources() {
		t.Fatal("TagsPerResource sample size mismatch")
	}
	if len(st.ResPerTag) != g.NumTags() || len(st.NeighborsPerTag) != g.NumTags() {
		t.Fatal("per-tag sample size mismatch")
	}
	if st.Annotations != len(d.Annotations) {
		t.Fatal("annotation count mismatch")
	}
}

func TestPopularTags(t *testing.T) {
	d := Generate(Tiny(7))
	g := d.BuildGraph()
	top := PopularTags(g, 10)
	if len(top) != 10 {
		t.Fatalf("got %d popular tags", len(top))
	}
	// Must be sorted by descending Res degree.
	for i := 1; i < len(top); i++ {
		if g.ResDegree(top[i]) > g.ResDegree(top[i-1]) {
			t.Fatal("popular tags not sorted by popularity")
		}
	}
	// The most popular tag must label far more resources than the median
	// tag — the "core" exists.
	if g.ResDegree(top[0]) < 20 {
		t.Fatalf("top tag labels only %d resources", g.ResDegree(top[0]))
	}
	// Asking for more tags than exist returns all of them.
	all := PopularTags(g, g.NumTags()+100)
	if len(all) != g.NumTags() {
		t.Fatalf("overflow request returned %d of %d tags", len(all), g.NumTags())
	}
}

func TestPresetScalesAreOrdered(t *testing.T) {
	tiny, small, big := Tiny(1), Small(1), LastFMScaled(1)
	if !(tiny.Annotations < small.Annotations && small.Annotations < big.Annotations) {
		t.Fatal("presets not ordered by size")
	}
	if !(tiny.Resources < small.Resources && small.Resources < big.Resources) {
		t.Fatal("presets not ordered by resources")
	}
}
