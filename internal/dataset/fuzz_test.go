package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that no input — malformed rows, stray quoting,
// huge fields, binary garbage — can panic the CSV loader, and that every
// accepted dataset round-trips through WriteCSV/ReadCSV preserving the
// annotation triples.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("user,item,tag\n"))
	f.Add([]byte("user,item,tag\nu1,r1,t1\nu2,r2,t2\n"))
	f.Add([]byte("user,item,tag\nu1,r1\n"))                     // short row
	f.Add([]byte("user,item,tag\nu1,r1,t1,extra\n"))            // long row
	f.Add([]byte("user,item,tag\n\"u1\",r1,t1\n"))              // quoting is not special
	f.Add([]byte("user,item,tag\nu1,,t1\n"))                    // empty item
	f.Add([]byte("wrong,header,here\nu1,r1,t1\n"))              // bad header
	f.Add([]byte("user,item,tag\nu1,r1," + bigField(8192)))     // huge field
	f.Add(bytes.Repeat([]byte{0x00, 0xFF, ',', '\n'}, 64))      // binary noise
	f.Add([]byte("user,item,tag\r\nu1,r1,t1\r\n"))              // CRLF
	f.Add([]byte("user,item,tag\n" + bigField(1<<20) + ",r,t")) // line past default scanner buffer

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to not panic
		}
		if len(d.Annotations) == 0 {
			t.Fatal("accepted dataset with no annotations")
		}
		// Vocabulary slices must be consistent with the triples.
		seenRes := make(map[string]bool, len(d.ResourceNames))
		for _, r := range d.ResourceNames {
			seenRes[r] = true
		}
		seenTag := make(map[string]bool, len(d.TagNames))
		for _, tg := range d.TagNames {
			seenTag[tg] = true
		}
		for _, a := range d.Annotations {
			if a.Resource == "" || a.Tag == "" {
				t.Fatalf("accepted empty item/tag: %+v", a)
			}
			if !seenRes[a.Resource] || !seenTag[a.Tag] {
				t.Fatalf("annotation %+v not in vocabulary", a)
			}
		}

		// Round trip: anything accepted must re-emit and re-load equal,
		// unless a name carries whitespace the writer cannot protect
		// (ReadCSV trims lines; WriteCSV writes names verbatim).
		if hasFragileName(d) {
			return
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of accepted dataset: %v", err)
		}
		d2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read of written dataset: %v", err)
		}
		if len(d2.Annotations) != len(d.Annotations) {
			t.Fatalf("round trip changed annotation count: %d != %d",
				len(d2.Annotations), len(d.Annotations))
		}
		for i := range d.Annotations {
			if d.Annotations[i] != d2.Annotations[i] {
				t.Fatalf("round trip changed annotation %d: %+v != %+v",
					i, d.Annotations[i], d2.Annotations[i])
			}
		}
	})
}

func hasFragileName(d *Dataset) bool {
	fragile := func(s string) bool {
		return strings.TrimSpace(s) != s || strings.ContainsAny(s, "\r\n")
	}
	for _, a := range d.Annotations {
		if fragile(a.User) || fragile(a.Resource) || fragile(a.Tag) {
			return true
		}
	}
	return false
}

func bigField(n int) string { return strings.Repeat("x", n) }
