package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// CSV interchange for annotation triples. The format is the classic
// three-column ⟨user, item, tag⟩ dump, so real crawls in that shape can
// be loaded in place of the synthetic generator, and generated
// workloads can be exported for external analysis.

const csvHeader = "user,item,tag"

// WriteCSV dumps the dataset's annotation triples.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, csvHeader); err != nil {
		return err
	}
	for _, a := range d.Annotations {
		if _, err := fmt.Fprintf(bw, "%s,%s,%s\n", a.User, a.Resource, a.Tag); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV loads a dataset from a ⟨user, item, tag⟩ dump produced by
// WriteCSV (or by any crawler using the same three-column layout).
// Names must not contain commas or newlines. The resulting dataset has
// an empty Config.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("dataset: read csv: %w", err)
		}
		return nil, fmt.Errorf("dataset: read csv: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != csvHeader {
		return nil, fmt.Errorf("dataset: read csv: header %q, want %q", got, csvHeader)
	}

	d := &Dataset{}
	seenTag := make(map[string]bool)
	seenRes := make(map[string]bool)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("dataset: read csv: line %d has %d fields, want 3", line, len(parts))
		}
		a := Annotation{User: parts[0], Resource: parts[1], Tag: parts[2]}
		if a.Resource == "" || a.Tag == "" {
			return nil, fmt.Errorf("dataset: read csv: line %d has empty item or tag", line)
		}
		if !seenRes[a.Resource] {
			seenRes[a.Resource] = true
			d.ResourceNames = append(d.ResourceNames, a.Resource)
		}
		if !seenTag[a.Tag] {
			seenTag[a.Tag] = true
			d.TagNames = append(d.TagNames, a.Tag)
		}
		d.Annotations = append(d.Annotations, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(d.Annotations) == 0 {
		return nil, fmt.Errorf("dataset: read csv: no annotations")
	}
	return d, nil
}
