// Package sim implements the paper's evaluation machinery: the
// approximated-graph evolution of §V-B (replay a tagging schedule under
// Approximations A and B and compare the resulting Folksonomy Graph with
// the theoretic one) and the faceted-search convergence experiment of
// §V-C.
//
// The evolution loop reproduces the DHARMA engine's update semantics
// bit-for-bit — same candidate ordering, same random-subset procedure,
// same Approximation B weights — but runs on interned integer adjacency
// instead of DHT blocks, which makes full-dataset replays hundreds of
// times faster. A cross-validation test asserts that, seeded alike, the
// simulator and the real engine produce identical graphs.
package sim

import (
	"math/rand"

	"dharma/internal/dataset"
	"dharma/internal/folksonomy"
)

// EvolutionConfig parameterises a §V-B replay.
type EvolutionConfig struct {
	// K is the connection parameter of Approximation A: at most K
	// reverse arcs are updated per tagging operation. K <= 0 disables
	// Approximation A (every reverse arc is updated).
	K int
	// ApproxB, when true, applies Approximation B: a forward arc that
	// does not exist yet is created at weight 1 instead of u(τ,r)
	// (existing arcs still grow by the theoretic increment).
	ApproxB bool
	// Seed drives the random subset selection of Approximation A.
	Seed int64
}

// Result is the FG produced by an evolution replay.
type Result struct {
	tagID   map[string]int32
	tagName []string
	sim     []map[int32]int32

	// Ops is the number of tagging operations replayed.
	Ops int
	// ReverseUpdates counts reverse-arc block updates — the component
	// of the lookup cost that Approximation A bounds.
	ReverseUpdates int64
}

// Neighbors returns the approximated N_FG(t) with weights, unsorted.
// It implements search.FGSource.
func (r *Result) Neighbors(t string) []folksonomy.Weighted {
	id, ok := r.tagID[t]
	if !ok {
		return nil
	}
	m := r.sim[id]
	out := make([]folksonomy.Weighted, 0, len(m))
	for t2, w := range m {
		out = append(out, folksonomy.Weighted{Name: r.tagName[t2], Weight: int(w)})
	}
	return out
}

// NeighborDegree returns |N_FG(t)| in the approximated graph.
func (r *Result) NeighborDegree(t string) int {
	id, ok := r.tagID[t]
	if !ok {
		return 0
	}
	return len(r.sim[id])
}

// Sim returns the approximated sim(t1,t2), 0 when absent.
func (r *Result) Sim(t1, t2 string) int {
	id1, ok := r.tagID[t1]
	if !ok {
		return 0
	}
	id2, ok := r.tagID[t2]
	if !ok {
		return 0
	}
	return int(r.sim[id1][id2])
}

// NumArcs returns the number of directed arcs in the approximated FG.
func (r *Result) NumArcs() int {
	n := 0
	for _, m := range r.sim {
		n += len(m)
	}
	return n
}

// TagNames lists the tags seen during the replay, in first-use order.
// The returned slice is shared; callers must not modify it.
func (r *Result) TagNames() []string { return r.tagName }

// cell mirrors one r̄ entry: a tag and its u(τ,r) weight. Each
// resource's cell list is kept sorted exactly like a DHT block read:
// count descending, name ascending.
type cell struct {
	id int32
	w  int32
}

// Evolver replays tagging operations one at a time, maintaining the
// approximated FG incrementally. It exists so experiments can inspect
// the graph at checkpoints mid-replay (e.g. the trend-emergence
// extension); Evolve is the whole-schedule convenience wrapper.
type Evolver struct {
	cfg    EvolutionConfig
	rng    *rand.Rand
	res    *Result
	resID  map[string]int32
	tagsOf [][]cell
	sample []cell // scratch for Approximation A
}

// NewEvolver starts a replay from the paper's "fully disconnected
// graph": resources exist but carry no tags.
func NewEvolver(cfg EvolutionConfig) *Evolver {
	return &Evolver{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		res:   &Result{tagID: make(map[string]int32)},
		resID: make(map[string]int32),
	}
}

// Result returns the live graph; it reflects every operation applied so
// far and keeps updating as more are applied.
func (e *Evolver) Result() *Result { return e.res }

func (e *Evolver) internTag(t string) int32 {
	if id, ok := e.res.tagID[t]; ok {
		return id
	}
	id := int32(len(e.res.tagName))
	e.res.tagID[t] = id
	e.res.tagName = append(e.res.tagName, t)
	e.res.sim = append(e.res.sim, make(map[int32]int32))
	return id
}

func (e *Evolver) internRes(r string) int32 {
	if id, ok := e.resID[r]; ok {
		return id
	}
	id := int32(len(e.tagsOf))
	e.resID[r] = id
	e.tagsOf = append(e.tagsOf, nil)
	return id
}

// less replicates the DHT read order: count desc, then name asc.
func (e *Evolver) less(a, b cell) bool {
	if a.w != b.w {
		return a.w > b.w
	}
	return e.res.tagName[a.id] < e.res.tagName[b.id]
}

// Apply performs one tagging operation under the configured
// approximations, mirroring the DHARMA engine's update semantics.
func (e *Evolver) Apply(a dataset.Annotation) {
	res := e.res
	rid := e.internRes(a.Resource)
	tid := e.internTag(a.Tag)
	adj := e.tagsOf[rid]

	// Locate t and collect the "others" in sorted order (adj is
	// maintained sorted, so a linear pass preserves it).
	tIdx := -1
	for i := range adj {
		if adj[i].id == tid {
			tIdx = i
			break
		}
	}
	wasTagged := tIdx >= 0

	// Forward arcs (t,τ): only when t is new on r, incremented by
	// u(τ,r). Approximation B dampens creation: an absent arc starts at
	// 1 instead of u(τ,r).
	if !wasTagged {
		simT := res.sim[tid]
		for _, c := range adj {
			if _, exists := simT[c.id]; !exists && e.cfg.ApproxB {
				simT[c.id] = 1
			} else {
				simT[c.id] += c.w
			}
		}
	}

	// Reverse arcs (τ,t): Approximation A bounds the fan-out to a
	// random subset of size K, drawn by the same partial Fisher-Yates
	// the engine uses on the same sorted candidates.
	others := adj
	if wasTagged {
		others = make([]cell, 0, len(adj)-1)
		others = append(others, adj[:tIdx]...)
		others = append(others, adj[tIdx+1:]...)
	}
	reverse := others
	if e.cfg.K > 0 && len(others) > e.cfg.K {
		e.sample = append(e.sample[:0], others...)
		for i := 0; i < e.cfg.K; i++ {
			j := i + e.rng.Intn(len(e.sample)-i)
			e.sample[i], e.sample[j] = e.sample[j], e.sample[i]
		}
		reverse = e.sample[:e.cfg.K]
	}
	for _, c := range reverse {
		res.sim[c.id][tid]++
	}
	res.ReverseUpdates += int64(len(reverse))

	// u(t,r) += 1, keeping the adjacency sorted.
	if wasTagged {
		adj[tIdx].w++
		for tIdx > 0 && e.less(adj[tIdx], adj[tIdx-1]) {
			adj[tIdx], adj[tIdx-1] = adj[tIdx-1], adj[tIdx]
			tIdx--
		}
	} else {
		adj = append(adj, cell{id: tid, w: 1})
		for i := len(adj) - 1; i > 0 && e.less(adj[i], adj[i-1]); i-- {
			adj[i], adj[i-1] = adj[i-1], adj[i]
		}
		e.tagsOf[rid] = adj
	}
	res.Ops++
}

// Evolve replays schedule (the §V-B tagging schedule: a random
// permutation of the dataset's annotation instances, see
// dataset.Shuffled) under cfg and returns the approximated FG.
func Evolve(schedule []dataset.Annotation, cfg EvolutionConfig) *Result {
	ev := NewEvolver(cfg)
	for _, a := range schedule {
		ev.Apply(a)
	}
	return ev.Result()
}
