package sim

import (
	"math/rand"

	"dharma/internal/folksonomy"
	"dharma/internal/metrics"
)

// Comparison holds the per-tag measures of §V-B comparing the
// approximated FG against the theoretic one, plus the scatter series
// behind Figures 6 and 8.
type Comparison struct {
	// Per-tag samples over tags that have at least one outgoing arc in
	// the theoretic graph.
	Recall []float64 // |N_approx(t)| / |N_orig(t)|
	Tau    []float64 // Kendall τ over the arcs common to both graphs
	Theta  []float64 // cosine similarity over common arcs
	Sim1   []float64 // among missing arcs of t: fraction with weight 1

	// MissingWeightLE3 is the global fraction of missing arcs whose
	// theoretic weight is ≤ 3 (the paper reports 99%).
	MissingWeightLE3 float64
	// MissingArcs and OrigArcs count directed arcs globally.
	MissingArcs, OrigArcs int

	// DegreePairs holds (original out-degree, simulated out-degree) per
	// tag — the Figure 6 scatter.
	DegreePairs [][2]float64
	// WeightPairs holds (original weight, simulated weight) for a
	// seeded sample of arcs — the Figure 8 scatter (0 simulated weight
	// marks a missing arc).
	WeightPairs [][2]float64
}

// CompareOptions tunes a comparison run.
type CompareOptions struct {
	// WeightSample caps the number of arc-weight pairs collected for
	// Figure 8 (0 selects 20000).
	WeightSample int
	// Seed drives the arc sampling.
	Seed int64
}

// Compare measures how the approximated graph diverges from the
// theoretic one, tag by tag, exactly as §V-B prescribes: Kτ and θ are
// computed "on the set of tags which are common to the two models",
// recall is the arc-count ratio, and sim1% is the share of weight-1
// arcs among those the approximation dropped.
func Compare(orig *folksonomy.Graph, approx *Result, opt CompareOptions) *Comparison {
	if opt.WeightSample == 0 {
		opt.WeightSample = 20000
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cmp := &Comparison{}

	// Reservoir sampling over all arcs for the Figure 8 scatter.
	reservoir := make([][2]float64, 0, opt.WeightSample)
	arcSeen := 0
	addPair := func(ow, aw float64) {
		arcSeen++
		if len(reservoir) < opt.WeightSample {
			reservoir = append(reservoir, [2]float64{ow, aw})
			return
		}
		if j := rng.Intn(arcSeen); j < opt.WeightSample {
			reservoir[j] = [2]float64{ow, aw}
		}
	}

	missingLE3 := 0
	for _, t := range orig.TagNames() {
		origArcs := orig.Neighbors(t)
		if len(origArcs) == 0 {
			continue
		}
		cmp.OrigArcs += len(origArcs)

		approxW := map[string]int{}
		for _, w := range approx.Neighbors(t) {
			approxW[w.Name] = w.Weight
		}
		cmp.Recall = append(cmp.Recall, metrics.Recall(len(approxW), len(origArcs)))
		cmp.DegreePairs = append(cmp.DegreePairs,
			[2]float64{float64(len(origArcs)), float64(len(approxW))})

		var commonO, commonA []float64
		missing, missingW1 := 0, 0
		for _, arc := range origArcs {
			aw := approxW[arc.Name]
			addPair(float64(arc.Weight), float64(aw))
			if aw > 0 {
				commonO = append(commonO, float64(arc.Weight))
				commonA = append(commonA, float64(aw))
			} else {
				missing++
				if arc.Weight == 1 {
					missingW1++
				}
				if arc.Weight <= 3 {
					missingLE3++
				}
			}
		}
		if len(commonO) >= 2 {
			// τ-b is undefined when either ranking is constant (its tie
			// correction zeroes the denominator); skip those tags, as a
			// 0 would otherwise read as "uncorrelated".
			if !isConstant(commonO) && !isConstant(commonA) {
				cmp.Tau = append(cmp.Tau, metrics.KendallTau(commonO, commonA))
			}
			cmp.Theta = append(cmp.Theta, metrics.Cosine(commonO, commonA))
		}
		if missing > 0 {
			cmp.Sim1 = append(cmp.Sim1, float64(missingW1)/float64(missing))
		}
		cmp.MissingArcs += missing
	}
	if cmp.MissingArcs > 0 {
		cmp.MissingWeightLE3 = float64(missingLE3) / float64(cmp.MissingArcs)
	}
	cmp.WeightPairs = reservoir
	return cmp
}

func isConstant(v []float64) bool {
	for _, x := range v[1:] {
		if x != v[0] {
			return false
		}
	}
	return true
}
