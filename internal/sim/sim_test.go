package sim

import (
	"context"
	"testing"

	"dharma/internal/core"
	"dharma/internal/dataset"
	"dharma/internal/dht"
	"dharma/internal/search"
)

func tinyData(t *testing.T) (*dataset.Dataset, []dataset.Annotation) {
	t.Helper()
	d := dataset.Generate(dataset.Tiny(11))
	return d, d.Shuffled(7)
}

func TestEvolveExactWhenUnapproximated(t *testing.T) {
	// With Approximation A and B both disabled, the replay must yield
	// the theoretic FG exactly.
	d, schedule := tinyData(t)
	orig := d.BuildGraph()
	res := Evolve(schedule, EvolutionConfig{K: 0, ApproxB: false})

	for _, tag := range orig.TagNames() {
		want := orig.Neighbors(tag)
		if len(want) != res.NeighborDegree(tag) {
			t.Fatalf("tag %s: degree %d vs theoretic %d", tag, res.NeighborDegree(tag), len(want))
		}
		for _, w := range want {
			if got := res.Sim(tag, w.Name); got != w.Weight {
				t.Fatalf("sim(%s,%s) = %d, theoretic %d", tag, w.Name, got, w.Weight)
			}
		}
	}
	if res.Ops != len(schedule) {
		t.Fatalf("Ops = %d, want %d", res.Ops, len(schedule))
	}
}

func TestEvolveOrderInvariantWhenExact(t *testing.T) {
	// The exact model is order-independent: two different schedules of
	// the same multiset must produce the same FG.
	d, _ := tinyData(t)
	a := Evolve(d.Shuffled(1), EvolutionConfig{})
	b := Evolve(d.Shuffled(2), EvolutionConfig{})
	if a.NumArcs() != b.NumArcs() {
		t.Fatalf("arc counts differ: %d vs %d", a.NumArcs(), b.NumArcs())
	}
	for _, tag := range a.TagNames() {
		for _, w := range a.Neighbors(tag) {
			if b.Sim(tag, w.Name) != w.Weight {
				t.Fatalf("sim(%s,%s) differs across orders", tag, w.Name)
			}
		}
	}
}

// TestEvolveMirrorsEngine is the cross-validation: the fast simulator,
// seeded like the real DHARMA engine, must produce the identical
// approximated graph for the identical schedule.
func TestEvolveMirrorsEngine(t *testing.T) {
	_, schedule := tinyData(t)
	const k, seed = 2, 99

	store := dht.NewLocal()
	eng, err := core.NewEngine(store, core.Config{
		Mode: core.Approximated, K: k, Seed: seed, TopN: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inserted := map[string]bool{}
	for _, a := range schedule {
		if !inserted[a.Resource] {
			if err := eng.InsertResource(context.Background(), a.Resource, ""); err != nil {
				t.Fatal(err)
			}
			inserted[a.Resource] = true
		}
		if err := eng.Tag(context.Background(), a.Resource, a.Tag); err != nil {
			t.Fatal(err)
		}
	}

	res := Evolve(schedule, EvolutionConfig{K: k, ApproxB: true, Seed: seed})

	for _, tag := range res.TagNames() {
		engArcs, err := eng.Neighbors(context.Background(), tag)
		if err != nil {
			t.Fatal(err)
		}
		engW := map[string]int{}
		for _, w := range engArcs {
			if w.Weight != 0 {
				engW[w.Name] = w.Weight
			}
		}
		simArcs := res.Neighbors(tag)
		if len(simArcs) != len(engW) {
			t.Fatalf("tag %s: simulator %d arcs, engine %d", tag, len(simArcs), len(engW))
		}
		for _, w := range simArcs {
			if engW[w.Name] != w.Weight {
				t.Fatalf("sim(%s,%s): simulator %d, engine %d", tag, w.Name, w.Weight, engW[w.Name])
			}
		}
	}
}

func TestEvolveApproxSubgraphOfExact(t *testing.T) {
	d, schedule := tinyData(t)
	orig := d.BuildGraph()
	for _, k := range []int{1, 3, 10} {
		res := Evolve(schedule, EvolutionConfig{K: k, ApproxB: true, Seed: int64(k)})
		for _, tag := range res.TagNames() {
			for _, w := range res.Neighbors(tag) {
				ow := orig.Sim(tag, w.Name)
				if ow == 0 {
					t.Fatalf("k=%d: spurious arc (%s,%s)", k, tag, w.Name)
				}
				if w.Weight > ow {
					t.Fatalf("k=%d: sim(%s,%s) approx %d > theoretic %d", k, tag, w.Name, w.Weight, ow)
				}
			}
		}
	}
}

func TestEvolveReverseUpdatesBounded(t *testing.T) {
	_, schedule := tinyData(t)
	const k = 2
	res := Evolve(schedule, EvolutionConfig{K: k, ApproxB: true, Seed: 1})
	if res.ReverseUpdates > int64(k*len(schedule)) {
		t.Fatalf("reverse updates %d exceed k·ops = %d", res.ReverseUpdates, k*len(schedule))
	}
	unbounded := Evolve(schedule, EvolutionConfig{K: 0, ApproxB: true, Seed: 1})
	if unbounded.ReverseUpdates <= res.ReverseUpdates {
		t.Fatal("disabling Approximation A did not increase reverse updates")
	}
}

func TestEvolveRecallGrowsWithK(t *testing.T) {
	d, schedule := tinyData(t)
	orig := d.BuildGraph()
	prev := -1.0
	for _, k := range []int{1, 5, 20} {
		res := Evolve(schedule, EvolutionConfig{K: k, ApproxB: true, Seed: 4})
		cmp := Compare(orig, res, CompareOptions{Seed: 4})
		var sum float64
		for _, r := range cmp.Recall {
			sum += r
		}
		mean := sum / float64(len(cmp.Recall))
		if mean < prev-0.02 { // allow sampling noise
			t.Fatalf("recall regressed as k grew: k=%d mean %.3f < %.3f", k, mean, prev)
		}
		prev = mean
	}
}

func TestCompareMetricsRanges(t *testing.T) {
	d, schedule := tinyData(t)
	orig := d.BuildGraph()
	res := Evolve(schedule, EvolutionConfig{K: 1, ApproxB: true, Seed: 5})
	cmp := Compare(orig, res, CompareOptions{WeightSample: 500, Seed: 5})

	if len(cmp.Recall) == 0 || len(cmp.Tau) == 0 || len(cmp.Theta) == 0 {
		t.Fatal("comparison produced no samples")
	}
	for _, r := range cmp.Recall {
		if r < 0 || r > 1 {
			t.Fatalf("recall %v out of range", r)
		}
	}
	for _, v := range cmp.Tau {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("tau %v out of range", v)
		}
	}
	for _, v := range cmp.Theta {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("theta %v out of range", v)
		}
	}
	for _, v := range cmp.Sim1 {
		if v < 0 || v > 1 {
			t.Fatalf("sim1 %v out of range", v)
		}
	}
	if cmp.MissingArcs == 0 {
		t.Fatal("k=1 on a dense dataset must drop some arcs")
	}
	if cmp.MissingWeightLE3 < 0.5 {
		t.Fatalf("missing arcs with weight<=3 = %.2f; the approximation should drop mostly noise", cmp.MissingWeightLE3)
	}
	if len(cmp.WeightPairs) == 0 || len(cmp.WeightPairs) > 500 {
		t.Fatalf("weight sample size %d", len(cmp.WeightPairs))
	}
	if len(cmp.DegreePairs) != len(cmp.Recall) {
		t.Fatal("degree pairs must align with per-tag recall samples")
	}
}

func TestCompareExactGraphIsPerfect(t *testing.T) {
	d, schedule := tinyData(t)
	orig := d.BuildGraph()
	res := Evolve(schedule, EvolutionConfig{}) // exact replay
	cmp := Compare(orig, res, CompareOptions{Seed: 1})
	for _, r := range cmp.Recall {
		if r != 1 {
			t.Fatalf("recall %v on exact replay", r)
		}
	}
	for _, v := range cmp.Tau {
		if v < 0.999 {
			t.Fatalf("tau %v on exact replay", v)
		}
	}
	if cmp.MissingArcs != 0 {
		t.Fatalf("%d missing arcs on exact replay", cmp.MissingArcs)
	}
}

func TestRunSearches(t *testing.T) {
	d, _ := tinyData(t)
	g := d.BuildGraph()
	v := search.NewFolkView(g)
	seeds := dataset.PopularTags(g, 5)

	out := RunSearches(v, SearchConfig{Seeds: seeds, RandomRuns: 10, Seed: 3})
	if n := len(out.Steps[search.First]); n != 5 {
		t.Fatalf("first runs = %d, want 5", n)
	}
	if n := len(out.Steps[search.Last]); n != 5 {
		t.Fatalf("last runs = %d, want 5", n)
	}
	if n := len(out.Steps[search.Random]); n != 50 {
		t.Fatalf("random runs = %d, want 50", n)
	}
	for strat, steps := range out.Steps {
		for _, s := range steps {
			if s < 1 {
				t.Fatalf("%v: path of %v steps", strat, s)
			}
		}
	}
}

func TestRunSearchesDeterministic(t *testing.T) {
	d, _ := tinyData(t)
	g := d.BuildGraph()
	seeds := dataset.PopularTags(g, 3)
	run := func() SearchOutcome {
		return RunSearches(search.NewFolkView(g), SearchConfig{Seeds: seeds, RandomRuns: 5, Seed: 8})
	}
	a, b := run(), run()
	for strat := range a.Steps {
		if len(a.Steps[strat]) != len(b.Steps[strat]) {
			t.Fatalf("%v: run sizes differ", strat)
		}
		for i := range a.Steps[strat] {
			if a.Steps[strat][i] != b.Steps[strat][i] {
				t.Fatalf("%v: path lengths differ at %d", strat, i)
			}
		}
	}
}
