package sim

import (
	"context"
	"math/rand"

	"dharma/internal/search"
)

// SearchConfig parameterises the §V-C convergence experiment.
type SearchConfig struct {
	// Seeds are the starting tags (the paper: 100 most popular).
	Seeds []string
	// RandomRuns is how many random-strategy walks run per seed tag
	// (the paper: 100). First and Last are deterministic and run once.
	RandomRuns int
	// Options configures the navigator (display cap 100, resource
	// threshold 10 in the paper; zero values select those defaults).
	Options search.Options
	// Seed drives the random strategy.
	Seed int64
}

// SearchOutcome collects path lengths per strategy.
type SearchOutcome struct {
	// Steps maps each strategy to the observed path lengths (the
	// paper's "search steps": tags selected, t0 included).
	Steps map[search.Strategy][]float64
}

// RunSearches executes the experiment on a view of one graph: for every
// seed tag, one "first" walk, one "last" walk and RandomRuns random
// walks.
func RunSearches(v search.View, cfg SearchConfig) SearchOutcome {
	if cfg.RandomRuns <= 0 {
		cfg.RandomRuns = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	out := SearchOutcome{Steps: map[search.Strategy][]float64{}}
	for _, seed := range cfg.Seeds {
		for _, strat := range []search.Strategy{search.First, search.Last} {
			opt := cfg.Options
			res, _ := search.Run(context.Background(), v, seed, strat, opt)
			out.Steps[strat] = append(out.Steps[strat], float64(res.Steps()))
		}
		for i := 0; i < cfg.RandomRuns; i++ {
			opt := cfg.Options
			opt.Rng = rng
			res, _ := search.Run(context.Background(), v, seed, search.Random, opt)
			out.Steps[search.Random] = append(out.Steps[search.Random], float64(res.Steps()))
		}
	}
	return out
}
