#!/usr/bin/env bash
# Metrics smoke: the ops endpoint answers with real numbers, end to end.
#
# A 3-node dharma-node fleet runs over real UDP with -debug-addr enabled
# and -trace-slow 1ns so every lookup crosses the slow threshold and
# leaves a retained trace. A client drives insert/tag/search traffic
# through the overlay, then `dharma-bench scrape` reads each node's ops
# endpoint and asserts the two things the telemetry exists to show:
# nonzero served-RPC latency histograms (-assert-rpc) and at least one
# hop-level lookup trace with spans (-assert-trace). The scrape also
# exercises /metrics parsing, /debug/stats, /debug/traces JSON decoding,
# and the pprof mux, so a regression in any of them fails here.
#
#   ./scripts/metrics_smoke.sh
set -euo pipefail

BASE_PORT="${BASE_PORT:-9560}"
DEBUG_PORT="${DEBUG_PORT:-9570}"
WORK="$(mktemp -d)"
NODE="$WORK/dharma-node"
BENCH="$WORK/dharma-bench"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$NODE" ./cmd/dharma-node
go build -o "$BENCH" ./cmd/dharma-bench

echo "== 3-node fleet, ops endpoints on ${DEBUG_PORT}..$((DEBUG_PORT + 2))"
"$NODE" serve -listen "127.0.0.1:${BASE_PORT}" \
  -debug-addr "127.0.0.1:${DEBUG_PORT}" -trace-slow 1ns \
  >"$WORK/node0.log" 2>&1 &
PIDS+=($!)
sleep 0.5
for i in 1 2; do
  "$NODE" serve -listen "127.0.0.1:$((BASE_PORT + i))" \
    -bootstrap "127.0.0.1:${BASE_PORT}" \
    -debug-addr "127.0.0.1:$((DEBUG_PORT + i))" -trace-slow 1ns \
    >"$WORK/node$i.log" 2>&1 &
  PIDS+=($!)
done
sleep 0.5

echo "== driving traffic through the overlay"
# Generous timeouts: every transient client leaves a dead ephemeral
# contact in the fleet's routing tables, so later lookups spend RPC
# timeouts discovering it's gone. (The slow-op traces below show
# exactly that — which is the feature under test doing its job.)
for r in nw yesterday helter; do
  "$NODE" insert -bootstrap "127.0.0.1:${BASE_PORT}" \
    -r "$r" -uri "magnet:?xt=$r" -tags rock,beatles -timeout 30s >/dev/null
done
"$NODE" tag -bootstrap "127.0.0.1:${BASE_PORT}" -r nw -t 60s -timeout 30s >/dev/null
"$NODE" search -bootstrap "127.0.0.1:$((BASE_PORT + 1))" -t rock -timeout 30s >/dev/null

echo "== scraping every node's ops endpoint"
# Every node must report served RPCs. Lookup traces exist only on nodes
# that *initiate* lookups — nodes 1 and 2 traced their bootstrap
# self-lookup (forced slow by -trace-slow 1ns); seed node 0 only serves.
for i in 0 1 2; do
  asserts=(-assert-rpc)
  [ "$i" -gt 0 ] && asserts+=(-assert-trace)
  echo "-- node $i (127.0.0.1:$((DEBUG_PORT + i)))"
  if ! "$BENCH" scrape -addr "127.0.0.1:$((DEBUG_PORT + i))" \
    "${asserts[@]}" >"$WORK/scrape$i.out" 2>"$WORK/scrape$i.err"; then
    echo "FAIL: scrape of node $i failed" >&2
    cat "$WORK/scrape$i.out" "$WORK/scrape$i.err" >&2
    exit 1
  fi
  # The asserts already enforce the substance; echo the proof lines.
  grep -E '^(assert-rpc ok|assert-trace ok|pprof: live)' "$WORK/scrape$i.out"
done

echo "== spot-checking the rendered output"
# The newest trace must render a hop timeline: per-hop peer, kind, rtt.
if ! grep -q 'hop 1  ' "$WORK/scrape1.out"; then
  echo "FAIL: node 1 scrape rendered no hop-level trace spans" >&2
  cat "$WORK/scrape1.out" >&2
  exit 1
fi
# The serve histograms must be labeled per RPC kind.
if ! grep -q 'dharma_rpc_serve_seconds{' "$WORK/scrape0.out"; then
  echo "FAIL: node 0 scrape shows no per-kind serve histogram" >&2
  cat "$WORK/scrape0.out" >&2
  exit 1
fi

echo "== clean SIGTERM stop of every node"
for pid in "${PIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  for _ in $(seq 1 40); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: node $pid ignored SIGTERM" >&2
    exit 1
  fi
done
PIDS=()

echo "metrics smoke passed: all 3 ops endpoints served metrics, stats, traces and pprof"
