#!/usr/bin/env bash
# Anti-entropy smoke: digest-frugal replica sync end to end, over real UDP.
#
# A 3-node dharma-node fleet runs with a 1-second maintenance interval,
# a client seeds resources and tags through the overlay (write-time
# replication puts identical blocks on every node), and then the fleet's
# periodic anti-entropy rounds take over. The check is the point of the
# feature: replicas that agree must prove it by digest — the maintenance
# log must show digest matches accumulating and ZERO full-block pushes,
# because shipping a block whose replicas already agree is exactly the
# bandwidth this protocol exists to avoid.
#
#   ./scripts/antientropy_smoke.sh
set -euo pipefail

BASE_PORT="${BASE_PORT:-9520}"
WORK="$(mktemp -d)"
NODE="$WORK/dharma-node"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$NODE" ./cmd/dharma-node

echo "== 3-node fleet, maintenance every 1s, ports ${BASE_PORT}..$((BASE_PORT + 2))"
"$NODE" serve -listen "127.0.0.1:${BASE_PORT}" -maintain 1s \
  >"$WORK/node0.log" 2>&1 &
PIDS+=($!)
sleep 0.5
for i in 1 2; do
  "$NODE" serve -listen "127.0.0.1:$((BASE_PORT + i))" \
    -bootstrap "127.0.0.1:${BASE_PORT}" -maintain 1s \
    >"$WORK/node$i.log" 2>&1 &
  PIDS+=($!)
done
sleep 0.5

echo "== seeding resources and tags through the overlay"
for r in nw yesterday helter; do
  "$NODE" insert -bootstrap "127.0.0.1:${BASE_PORT}" \
    -r "$r" -uri "magnet:?xt=$r" -tags rock,beatles -timeout 5s >/dev/null
done
"$NODE" tag -bootstrap "127.0.0.1:${BASE_PORT}" -r nw -t 60s -timeout 5s >/dev/null

echo "== letting anti-entropy rounds run"
# ~4 maintenance ticks: the first syncs every block (proven equal by
# digest), later ones skip settled blocks entirely.
sleep 4.5

echo "== clean SIGTERM stop of every node"
for pid in "${PIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  for _ in $(seq 1 40); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: node $pid ignored SIGTERM" >&2
    exit 1
  fi
done
PIDS=()

echo "== verifying the maintenance logs"
total_matches=0
for i in 0 1 2; do
  log="$WORK/node$i.log"
  last="$(grep 'maintenance: anti-entropy' "$log" | tail -n 1 || true)"
  if [ -z "$last" ]; then
    echo "FAIL: node $i logged no anti-entropy maintenance round" >&2
    cat "$log" >&2
    exit 1
  fi
  echo "node $i: $last"
  matches="$(sed -n 's/.*matches=\([0-9]*\).*/\1/p' <<<"$last")"
  full="$(sed -n 's/.*full-blocks=\([0-9]*\).*/\1/p' <<<"$last")"
  if [ -z "$matches" ] || [ -z "$full" ]; then
    echo "FAIL: node $i maintenance line missing counters" >&2
    exit 1
  fi
  if [ "$full" -ne 0 ]; then
    echo "FAIL: node $i pushed $full full blocks — replicas that agree must match by digest, not re-ship data" >&2
    exit 1
  fi
  total_matches=$((total_matches + matches))
done
if [ "$total_matches" -eq 0 ]; then
  echo "FAIL: no digest matches anywhere in the fleet — summary exchange never proved replica agreement" >&2
  exit 1
fi

echo "anti-entropy smoke passed: $total_matches digest matches fleet-wide, zero full-block pushes, clean stop"
