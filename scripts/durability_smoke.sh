#!/usr/bin/env bash
# Durability smoke: a dharma-node killed with SIGKILL and restarted on
# the same -data-dir must serve every previously acknowledged insert
# and tag. Run from the repository root:
#
#   ./scripts/durability_smoke.sh
#
# Exits nonzero if the restarted node lost anything.
set -euo pipefail

PORT="${PORT:-9461}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DATA="$WORK/data"
BIN="$WORK/dharma-node"
SRV_PID=""

cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dharma-node

# retry cmd... — the server needs a moment to bind after each start.
retry() {
  local i
  for i in $(seq 1 40); do
    if "$@" >"$WORK/out.txt" 2>&1; then
      cat "$WORK/out.txt"
      return 0
    fi
    sleep 0.25
  done
  echo "command failed after retries: $*" >&2
  cat "$WORK/out.txt" >&2
  return 1
}

echo "== start node with -data-dir =="
"$BIN" serve -listen "$ADDR" -data-dir "$DATA" >"$WORK/serve1.log" 2>&1 &
SRV_PID=$!

echo "== insert + tag through a client =="
retry "$BIN" insert -bootstrap "$ADDR" -r song -uri magnet:xt=durable -tags rock,60s
retry "$BIN" tag -bootstrap "$ADDR" -r song -t beatles

echo "== SIGKILL the server =="
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "== restart on the same data dir =="
"$BIN" serve -listen "$ADDR" -data-dir "$DATA" >"$WORK/serve2.log" 2>&1 &
SRV_PID=$!

echo "== verify recovered state =="
retry "$BIN" resolve -bootstrap "$ADDR" -r song | tee "$WORK/resolve.txt"
grep -q "magnet:xt=durable" "$WORK/resolve.txt" || {
  echo "FAIL: resolve lost the URI after SIGKILL+restart" >&2
  cat "$WORK/serve2.log" >&2
  exit 1
}

retry "$BIN" search -bootstrap "$ADDR" -t rock | tee "$WORK/search.txt"
grep -q "song" "$WORK/search.txt" || {
  echo "FAIL: search lost the resource after SIGKILL+restart" >&2
  cat "$WORK/serve2.log" >&2
  exit 1
}
grep -q "60s" "$WORK/search.txt" || {
  echo "FAIL: related tags lost after SIGKILL+restart" >&2
  exit 1
}

# The restarted server must have come back as the same overlay member.
ID1=$(grep -o "node [0-9a-f]*" "$WORK/serve1.log" | head -1 || true)
ID2=$(grep -o "node [0-9a-f]*" "$WORK/serve2.log" | head -1 || true)
if [ -n "$ID1" ] && [ "$ID1" != "$ID2" ]; then
  echo "FAIL: identity changed across restart ($ID1 -> $ID2)" >&2
  exit 1
fi
grep -q "recovered" "$WORK/serve2.log" || {
  echo "FAIL: restart did not report WAL recovery" >&2
  cat "$WORK/serve2.log" >&2
  exit 1
}

kill -9 "$SRV_PID" 2>/dev/null || true
SRV_PID=""
echo "durability smoke PASSED: acknowledged writes survived SIGKILL + restart"
