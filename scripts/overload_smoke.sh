#!/usr/bin/env bash
# Overload smoke: admission control end to end, over real UDP.
#
# A 3-node dharma-node fleet runs with a shallow admission queue, and
# dharma-bench overload offers 1x and 4x its measured capacity through
# real UDP clients. The check the bench applies is the point of the
# exercise: goodput at 4x must stay within tolerance of goodput at 1x
# (excess load is answered BUSY early and retried with backoff, instead
# of queueing every request into a timeout), and the generator's
# goroutines must return to baseline. A clean SIGTERM stop of every
# node proves the bounded handler pool drains on shutdown.
#
#   ./scripts/overload_smoke.sh
set -euo pipefail

BASE_PORT="${BASE_PORT:-9480}"
WORK="$(mktemp -d)"
NODE="$WORK/dharma-node"
BENCH="$WORK/dharma-bench"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$NODE" ./cmd/dharma-node
go build -o "$BENCH" ./cmd/dharma-bench

echo "== 3-node fleet, queue-depth 64, peer-rate 150, ports ${BASE_PORT}..$((BASE_PORT + 2))"
# Over real UDP the overloadable resource is the socket + CPU, which
# concurrency-based admission alone cannot see (handlers are fast; the
# queue is in the kernel) — the per-peer rate limit is what sheds load
# early here, so the fleet runs with one low enough to bite on a small
# CI box.
"$NODE" serve -listen "127.0.0.1:${BASE_PORT}" -queue-depth 64 -peer-rate 150 \
  >"$WORK/node0.log" 2>&1 &
PIDS+=($!)
sleep 0.5
for i in 1 2; do
  "$NODE" serve -listen "127.0.0.1:$((BASE_PORT + i))" \
    -bootstrap "127.0.0.1:${BASE_PORT}" -queue-depth 64 -peer-rate 150 \
    >"$WORK/node$i.log" 2>&1 &
  PIDS+=($!)
done
sleep 0.5

echo "== overload bench: 1x and 4x measured capacity through the fleet"
# Loopback UDP latency is noisy on a shared CI box, so the tolerance is
# looser than the simnet run's; the invariant under test is the same.
rc=0
"$BENCH" overload -bootstrap "127.0.0.1:${BASE_PORT}" \
  -mult 1,4 -duration 1s -calibrate 500ms -clients 3 -op-timeout 500ms \
  -tolerance 0.4 -goroutine-budget 300 \
  >"$WORK/bench.log" 2>&1 || rc=$?
cat "$WORK/bench.log"
if [ "$rc" -ne 0 ]; then
  echo "FAIL: overload bench exited $rc (goodput collapsed or goroutines leaked)" >&2
  exit 1
fi
if ! grep -q "overload check passed" "$WORK/bench.log"; then
  echo "FAIL: bench log missing the passing check" >&2
  exit 1
fi

echo "== clean SIGTERM stop of every node"
for pid in "${PIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  for _ in $(seq 1 40); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: node $pid ignored SIGTERM" >&2
    exit 1
  fi
done
PIDS=()

echo "overload smoke passed: flat goodput at 4x offered load, clean fleet stop"
