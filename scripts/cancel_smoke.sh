#!/usr/bin/env bash
# Cancellation smoke: the context-first API end to end, over real UDP.
#
# A dharma-node client given a 100ms deadline against a DEAD bootstrap
# must exit nonzero within 2 seconds: the deadline has to abort the
# transport's in-flight waiter (default retry timeout 2s per exchange),
# not wait it out. A healthy serve instance runs alongside to prove the
# binary itself boots and stops cleanly on SIGTERM (signal.NotifyContext).
#
#   ./scripts/cancel_smoke.sh
set -euo pipefail

PORT="${PORT:-9473}"
DEAD="127.0.0.1:1" # reserved port: datagrams vanish, nothing answers
WORK="$(mktemp -d)"
BIN="$WORK/dharma-node"
SRV_PID=""

cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/dharma-node

"$BIN" serve -listen "127.0.0.1:${PORT}" >"$WORK/serve.log" 2>&1 &
SRV_PID=$!
sleep 0.5

echo "== client op, 100ms deadline, dead bootstrap ${DEAD}"
start_ns=$(date +%s%N)
rc=0
"$BIN" search -bootstrap "$DEAD" -t rock -timeout 100ms >"$WORK/client.log" 2>&1 || rc=$?
end_ns=$(date +%s%N)
elapsed_ms=$(((end_ns - start_ns) / 1000000))

echo "   exit=$rc elapsed=${elapsed_ms}ms"
cat "$WORK/client.log"

if [ "$rc" -eq 0 ]; then
  echo "FAIL: client against a dead bootstrap exited 0" >&2
  exit 1
fi
if [ "$elapsed_ms" -ge 2000 ]; then
  echo "FAIL: client took ${elapsed_ms}ms; the 100ms deadline must beat the 2s retry timer" >&2
  exit 1
fi
if ! grep -qi "deadline" "$WORK/client.log"; then
  echo "FAIL: client error does not mention the deadline" >&2
  exit 1
fi

echo "== clean SIGTERM stop of the serve instance"
kill "$SRV_PID"
for _ in $(seq 1 40); do
  kill -0 "$SRV_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SRV_PID" 2>/dev/null; then
  echo "FAIL: serve instance ignored SIGTERM" >&2
  exit 1
fi
SRV_PID=""

echo "cancellation smoke passed: nonzero exit in ${elapsed_ms}ms (<2s), clean server stop"
