#!/usr/bin/env bash
# Allocation-regression gate: runs the benchmarks named in
# scripts/alloc_budgets.txt with -benchmem and fails when any reports
# more allocs/op than its budget. Budgets are integers because
# testing.B truncates allocs/op — a budget of 0 tolerates rare pool
# warm-up allocations but fails on any real per-op allocation.
set -euo pipefail
cd "$(dirname "$0")/.."

budgets=scripts/alloc_budgets.txt
results=$(mktemp)
trap 'rm -f "$results"' EXIT

# One `go test` invocation per package, benching every budgeted name.
for pkg in $(awk '!/^#/ && NF {print $1}' "$budgets" | sort -u); do
  # Parent benchmark names (strip subtest path) joined into one regex.
  pat=$(awk -v p="$pkg" '!/^#/ && $1==p {split($2, a, "/"); print a[1]}' "$budgets" | sort -u | paste -sd'|' -)
  echo "== $pkg (-bench '^($pat)$')"
  go test "$pkg" -run '^$' -bench "^($pat)\$" -benchmem -benchtime 1000x \
    | tee -a "$results"
done

fail=0
while read -r pkg name budget; do
  case "$pkg" in ''|'#'*) continue ;; esac
  # Benchmark output names carry a -GOMAXPROCS suffix.
  got=$(awk -v n="$name" '$1 ~ ("^" n "(-[0-9]+)?$") {print $(NF-1); exit}' "$results")
  if [ -z "$got" ]; then
    echo "alloc gate: $pkg $name: no benchmark output found" >&2
    fail=1
    continue
  fi
  if [ "$got" -gt "$budget" ]; then
    echo "alloc gate: $pkg $name: $got allocs/op exceeds budget $budget" >&2
    fail=1
  else
    echo "alloc gate: $pkg $name: $got allocs/op (budget $budget) OK"
  fi
done < <(grep -vE '^\s*(#|$)' "$budgets")

exit $fail
