#!/usr/bin/env bash
# Auth smoke: the secure wire holds up end to end, against a live fleet.
#
# A CA is initialised on disk (`dharma-node ca init`), identities are
# issued to three serving nodes and two clients, and one client
# (mallory) is revoked before the fleet boots. The 3-node fleet runs
# over real UDP with -require-auth: every datagram travels inside an
# authenticated session, every mutation is vetted against the CA key
# and the revocation bundle.
#
# The script then proves the three properties the layer exists for:
#
#   1. An authorized client (alice) can write and read back.
#   2. A malicious writer is refused: a plain (session-less) client and
#      the revoked client both fail to write, and NOTHING they attempted
#      to store is readable afterwards — zero unauthorized entries.
#   3. A 100ms client deadline is enforced server-side: against a node
#      with -chaos-delay 300ms the budget travels in the message header
#      and the server sheds the dead-on-arrival request, visible in its
#      dharma_rpc_deadline_shed_count metric.
#
#   ./scripts/auth_smoke.sh
set -euo pipefail

BASE_PORT="${BASE_PORT:-9580}"
DEBUG_PORT="${DEBUG_PORT:-9590}"
WORK="$(mktemp -d)"
NODE="$WORK/dharma-node"
BENCH="$WORK/dharma-bench"
CA="$WORK/ca"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$NODE" ./cmd/dharma-node
go build -o "$BENCH" ./cmd/dharma-bench

echo "== CA setup: init, issue, revoke"
"$NODE" ca init -dir "$CA" -validity 1h
for who in node0 node1 node2 node3 alice mallory; do
  "$NODE" ca issue -dir "$CA" -name "$who" -out "$WORK/$who.id"
done
# Mallory is revoked before the fleet boots: the bundle every node
# loads already names her.
"$NODE" ca revoke -dir "$CA" -identity "$WORK/mallory.id"

SEC=(-ca "$CA/ca.pub" -revocations "$CA/revocations.bin")

echo "== 3-node secured fleet (-require-auth) on ${BASE_PORT}..$((BASE_PORT + 2))"
"$NODE" serve -listen "127.0.0.1:${BASE_PORT}" \
  -identity "$WORK/node0.id" "${SEC[@]}" -require-auth \
  -debug-addr "127.0.0.1:${DEBUG_PORT}" \
  >"$WORK/node0.log" 2>&1 &
PIDS+=($!)
sleep 0.5
for i in 1 2; do
  "$NODE" serve -listen "127.0.0.1:$((BASE_PORT + i))" \
    -bootstrap "127.0.0.1:${BASE_PORT}" \
    -identity "$WORK/node$i.id" "${SEC[@]}" -require-auth \
    -debug-addr "127.0.0.1:$((DEBUG_PORT + i))" \
    >"$WORK/node$i.log" 2>&1 &
  PIDS+=($!)
done
sleep 0.5

echo "== authorized client (alice) writes and reads back"
"$NODE" insert -bootstrap "127.0.0.1:${BASE_PORT}" \
  -identity "$WORK/alice.id" "${SEC[@]}" \
  -r good-song -uri "magnet:?xt=good" -tags rock,signed -timeout 30s
"$NODE" tag -bootstrap "127.0.0.1:$((BASE_PORT + 1))" \
  -identity "$WORK/alice.id" "${SEC[@]}" \
  -r good-song -t verified -timeout 30s
"$NODE" resolve -bootstrap "127.0.0.1:$((BASE_PORT + 2))" \
  -identity "$WORK/alice.id" "${SEC[@]}" \
  -r good-song -timeout 30s | grep -q "magnet:?xt=good" || {
  echo "FAIL: authorized client cannot read its own write back" >&2
  exit 1
}

echo "== malicious writer 1: plain (session-less) client is refused"
if "$NODE" insert -bootstrap "127.0.0.1:${BASE_PORT}" \
  -r evil-plain -uri "magnet:?xt=evil" -tags pwn -timeout 5s \
  >"$WORK/plain.out" 2>&1; then
  echo "FAIL: unauthenticated client was allowed to write" >&2
  cat "$WORK/plain.out" >&2
  exit 1
fi
echo "   refused, as it must be"

echo "== malicious writer 2: revoked client (mallory) is refused"
if "$NODE" insert -bootstrap "127.0.0.1:${BASE_PORT}" \
  -identity "$WORK/mallory.id" "${SEC[@]}" \
  -r evil-revoked -uri "magnet:?xt=evil" -tags pwn -timeout 5s \
  >"$WORK/mallory.out" 2>&1; then
  echo "FAIL: revoked client was allowed to write" >&2
  cat "$WORK/mallory.out" >&2
  exit 1
fi
echo "   refused, as it must be"

echo "== zero unauthorized entries readable"
for r in evil-plain evil-revoked; do
  if "$NODE" resolve -bootstrap "127.0.0.1:$((BASE_PORT + 1))" \
    -identity "$WORK/alice.id" "${SEC[@]}" \
    -r "$r" -timeout 10s >"$WORK/resolve-$r.out" 2>&1; then
    echo "FAIL: unauthorized resource $r is readable:" >&2
    cat "$WORK/resolve-$r.out" >&2
    exit 1
  fi
done
echo "   neither malicious write left a readable trace"

echo "== scraping the security telemetry"
# Node 0 accepted the fleet's and alice's handshakes, holds live
# sessions, and refused the plain caller at the transport.
"$BENCH" scrape -addr "127.0.0.1:${DEBUG_PORT}" -assert-rpc \
  -assert-min "dharma_session_accepted_total=2,dharma_session_cache_size=1,dharma_udp_unauthenticated_rejected_total=1" \
  >"$WORK/scrape0.out"
grep -E '^assert-min ok' "$WORK/scrape0.out"
# Node 1 dialed node 0 to bootstrap: its handshake latency histogram
# must have fired.
"$BENCH" scrape -addr "127.0.0.1:$((DEBUG_PORT + 1))" \
  -assert-min "dharma_session_handshake_seconds=1" \
  >"$WORK/scrape1.out"
grep -E '^assert-min ok' "$WORK/scrape1.out"

echo "== deadline propagation: 100ms client budget, 300ms server delay"
"$NODE" serve -listen "127.0.0.1:$((BASE_PORT + 3))" \
  -identity "$WORK/node3.id" "${SEC[@]}" -require-auth \
  -chaos-delay 300ms \
  -debug-addr "127.0.0.1:$((DEBUG_PORT + 3))" \
  >"$WORK/node3.log" 2>&1 &
PIDS+=($!)
sleep 0.5
# The client's 100ms budget travels in every message header; the chaos
# node sits on each request for 300ms, finds the deadline gone, and
# sheds instead of answering. The client must come back empty-handed...
if "$NODE" insert -bootstrap "127.0.0.1:$((BASE_PORT + 3))" \
  -identity "$WORK/alice.id" "${SEC[@]}" \
  -r deadline-probe -uri "magnet:?xt=probe" -timeout 100ms \
  >"$WORK/deadline.out" 2>&1; then
  echo "FAIL: 100ms-budget write against a 300ms-delay node succeeded" >&2
  cat "$WORK/deadline.out" >&2
  exit 1
fi
# ...and the SERVER must have observed the expiry: the shed counter
# proves the budget crossed the wire rather than dying client-side.
"$BENCH" scrape -addr "127.0.0.1:$((DEBUG_PORT + 3))" \
  -assert-min "dharma_rpc_deadline_shed_count=1" \
  >"$WORK/scrape3.out"
grep -E '^assert-min ok' "$WORK/scrape3.out"

echo "== clean SIGTERM stop of every node"
for pid in "${PIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  for _ in $(seq 1 40); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: node $pid ignored SIGTERM" >&2
    exit 1
  fi
done
PIDS=()

echo "auth smoke passed: signed writes land, unsigned and revoked writers bounce, deadlines shed server-side"
